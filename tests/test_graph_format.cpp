// ftspan.graph.v1 + importer test wall (ISSUE 7).
//
// Three fronts: (1) round-trip fidelity — save → mmap-load preserves the
// edge array, the CSR arrays, and engine traversal bit-for-bit; (2) the
// malformed-input wall — every corruption class is rejected with an error
// naming the byte offset (binary) or line number (importer); (3) the
// writer-identity contract — importing a text instance and saving the same
// graph produce byte-identical files.
#include "graph/graph_file.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <fstream>
#include <sstream>
#include <vector>

#include "graph/csr.hpp"
#include "graph/generators.hpp"
#include "graph/import.hpp"
#include "graph/io.hpp"
#include "graph/sp_engine.hpp"
#include "runner/workloads.hpp"

namespace ftspan {
namespace {

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

std::vector<std::byte> read_file(const std::string& path) {
  std::ifstream is(path, std::ios::binary | std::ios::ate);
  EXPECT_TRUE(is.good()) << path;
  std::vector<std::byte> bytes(static_cast<std::size_t>(is.tellg()));
  is.seekg(0);
  is.read(reinterpret_cast<char*>(bytes.data()),
          static_cast<std::streamsize>(bytes.size()));
  return bytes;
}

void write_file(const std::string& path, const std::vector<std::byte>& bytes) {
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  os.write(reinterpret_cast<const char*>(bytes.data()),
           static_cast<std::streamsize>(bytes.size()));
}

/// Recomputes and re-stamps the header checksum over the (possibly patched)
/// payload, so structural corruptions are caught by their own check rather
/// than masked by the checksum mismatch.
void restamp_checksum(std::vector<std::byte>& bytes) {
  const std::uint64_t sum = graph_file_checksum(
      {bytes.data() + sizeof(GraphFileHeader),
       bytes.size() - sizeof(GraphFileHeader)});
  std::memcpy(bytes.data() + offsetof(GraphFileHeader, checksum), &sum,
              sizeof(sum));
}

/// Expects MappedGraph(path) to throw a std::runtime_error whose message
/// contains every listed fragment (always including "byte" — the format's
/// promise that failures name an offset).
void expect_load_error(const std::string& path,
                       const std::vector<std::string>& fragments) {
  try {
    MappedGraph mg(path);
    FAIL() << "expected " << path << " to be rejected";
  } catch (const std::runtime_error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("byte"), std::string::npos) << msg;
    for (const std::string& frag : fragments)
      EXPECT_NE(msg.find(frag), std::string::npos)
          << "missing '" << frag << "' in: " << msg;
  }
}

/// Expects import_graph over `text` to throw naming a line number.
void expect_import_error(const std::string& text, ImportFormat format,
                         const std::vector<std::string>& fragments) {
  std::istringstream is(text);
  try {
    import_graph(is, temp_path("import_reject.fgb"), format);
    FAIL() << "expected rejection of: " << text;
  } catch (const std::runtime_error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("line"), std::string::npos) << msg;
    for (const std::string& frag : fragments)
      EXPECT_NE(msg.find(frag), std::string::npos)
          << "missing '" << frag << "' in: " << msg;
  }
}

Graph test_graph() { return gnp(60, 0.15, 42, 5.0); }

// ---------------------------------------------------------------------------
// Round-trip fidelity

TEST(GraphFormat, SaveLoadPreservesEdgeArrayExactly) {
  const Graph g = test_graph();
  const std::string path = temp_path("roundtrip.fgb");
  save_graph_binary(path, g);

  const MappedGraph mg(path);
  ASSERT_EQ(mg.num_vertices(), g.num_vertices());
  ASSERT_EQ(mg.num_edges(), g.num_edges());
  const auto edges = mg.edges();
  for (EdgeId i = 0; i < g.num_edges(); ++i) {
    EXPECT_EQ(edges[i].u, g.edge(i).u);
    EXPECT_EQ(edges[i].v, g.edge(i).v);
    // Bit-exact, not approximately equal: the format stores the doubles raw.
    EXPECT_EQ(edges[i].w, g.edge(i).w);
  }

  const Graph h = mg.to_graph();
  ASSERT_EQ(h.num_edges(), g.num_edges());
  for (EdgeId i = 0; i < g.num_edges(); ++i) {
    EXPECT_EQ(h.edge(i).u, g.edge(i).u);
    EXPECT_EQ(h.edge(i).v, g.edge(i).v);
    EXPECT_EQ(h.edge(i).w, g.edge(i).w);
  }
}

TEST(GraphFormat, MappedCsrViewMatchesInMemorySnapshot) {
  const Graph g = test_graph();
  const std::string path = temp_path("csrview.fgb");
  save_graph_binary(path, g);

  const MappedGraph mg(path);
  const CsrView view = mg.csr();
  const Csr csr(g);
  ASSERT_EQ(view.num_vertices(), csr.num_vertices());
  ASSERT_EQ(view.num_arcs(), csr.num_arcs());
  EXPECT_EQ(view.weights().integral, csr.weights().integral);
  EXPECT_EQ(view.weights().max_weight, csr.weights().max_weight);
  EXPECT_EQ(view.weights().total_weight, csr.weights().total_weight);
  for (Vertex v = 0; v < csr.num_vertices(); ++v) {
    const auto a = view.out(v);
    const auto b = csr.out(v);
    ASSERT_EQ(a.size(), b.size()) << "v=" << v;
    for (std::size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i].to, b[i].to);
      EXPECT_EQ(a[i].edge, b[i].edge);
      EXPECT_EQ(a[i].w, b[i].w);
    }
  }
}

TEST(GraphFormat, EngineTraversesTheMappingInPlace) {
  // The zero-copy contract: DijkstraEngine runs on the CsrView straight off
  // the mapping and reproduces the in-memory Csr run bit-for-bit.
  const Graph g = test_graph();
  const std::string path = temp_path("engine_view.fgb");
  save_graph_binary(path, g);
  const MappedGraph mg(path);
  const CsrView view = mg.csr();
  const Csr csr(g);

  DijkstraEngine on_view, on_csr;
  for (Vertex s = 0; s < g.num_vertices(); s += 7) {
    on_view.run(view, s);
    on_csr.run(csr, s);
    for (Vertex v = 0; v < g.num_vertices(); ++v) {
      ASSERT_EQ(on_view.dist(v), on_csr.dist(v)) << "s=" << s << " v=" << v;
      ASSERT_EQ(on_view.parent(v), on_csr.parent(v));
    }
  }
}

TEST(GraphFormat, HeaderCarriesTheWeightProfile) {
  const Graph g = test_graph();  // real-valued weights
  const std::string path = temp_path("header.fgb");
  save_graph_binary(path, g);
  const MappedGraph mg(path);
  const Csr csr(g);
  EXPECT_EQ(mg.header().version, kGraphFileVersion);
  EXPECT_EQ(mg.header().flags, 0u);
  EXPECT_EQ(mg.header().num_arcs, 2 * g.num_edges());
  EXPECT_EQ(mg.weights().integral, csr.weights().integral);
  EXPECT_EQ(mg.weights().max_weight, csr.weights().max_weight);
  EXPECT_EQ(mg.weights().total_weight, csr.weights().total_weight);
}

// ISSUE 10: the engine-policy resolution (heap/bucket/delta) hangs off the
// hoisted WeightProfile, so the profile a graph carries after an mmap-load
// round trip must equal the profile of the in-memory original bit-for-bit —
// for every workload family, in the integral regime (the max_weight=
// reweight), the fractional regime (a +0.5 shift), and as generated. A
// drifted bit here would silently flip the resolved engine.
TEST(GraphFormat, WeightProfileSurvivesBinaryRoundTripForAllWorkloads) {
  for (const std::string& name : runner::workload_registry().names()) {
    if (name == "file") continue;  // nothing to generate
    for (const char* regime : {"generated", "integral", "fractional"}) {
      SCOPED_TRACE(name + std::string(" / ") + regime);
      runner::WorkloadParams wp;
      wp.scale = 0.3;
      wp.seed = 17;
      if (std::strcmp(regime, "integral") == 0) wp.max_weight = 100000;
      Graph g = runner::make_workload(name, wp).g;
      if (std::strcmp(regime, "fractional") == 0) {
        std::vector<Edge> shifted;
        for (EdgeId id = 0; id < g.num_edges(); ++id) {
          Edge e = g.edge(id);
          e.w += 0.5;
          shifted.push_back(e);
        }
        g = Graph::from_edges(g.num_vertices(), shifted);
      }

      const std::string path =
          temp_path("profile_" + name + "_" + regime + ".fgb");
      save_graph_binary(path, g);
      const Csr want(g);
      // Both load paths: the zero-copy mapping's header profile and the
      // profile recomputed from the load_graph_any materialization.
      const MappedGraph mg(path);
      EXPECT_EQ(mg.weights().integral, want.weights().integral);
      EXPECT_EQ(mg.weights().max_weight, want.weights().max_weight);
      EXPECT_EQ(mg.weights().total_weight, want.weights().total_weight);
      const Csr loaded(load_graph_any(path));
      EXPECT_EQ(loaded.weights().integral, want.weights().integral);
      EXPECT_EQ(loaded.weights().max_weight, want.weights().max_weight);
      EXPECT_EQ(loaded.weights().total_weight, want.weights().total_weight);
      // The policy hook itself: both profiles must resolve the same queue.
      EXPECT_EQ(select_sp_queue(SpEnginePolicy::kAuto,
                                mg.weights().integral,
                                mg.weights().max_weight),
                select_sp_queue(SpEnginePolicy::kAuto, want.weights().integral,
                                want.weights().max_weight));
    }
  }
}

TEST(GraphFormat, LoadGraphAnyDispatchesOnMagic) {
  const Graph g = grid(4, 5);
  const std::string bin = temp_path("any.fgb");
  const std::string txt = temp_path("any.txt");
  save_graph_binary(bin, g);
  save_graph(txt, g);
  EXPECT_TRUE(is_graph_binary(bin));
  EXPECT_FALSE(is_graph_binary(txt));
  const Graph from_bin = load_graph_any(bin);
  const Graph from_txt = load_graph_any(txt);
  ASSERT_EQ(from_bin.num_edges(), g.num_edges());
  ASSERT_EQ(from_txt.num_edges(), g.num_edges());
  for (EdgeId i = 0; i < g.num_edges(); ++i) {
    EXPECT_EQ(from_bin.edge(i).u, from_txt.edge(i).u);
    EXPECT_EQ(from_bin.edge(i).v, from_txt.edge(i).v);
  }
}

TEST(GraphFormat, EmptyGraphRoundTrips) {
  const Graph g(5);
  const std::string path = temp_path("empty.fgb");
  save_graph_binary(path, g);
  const MappedGraph mg(path);
  EXPECT_EQ(mg.num_vertices(), 5u);
  EXPECT_EQ(mg.num_edges(), 0u);
  EXPECT_EQ(mg.to_graph().num_edges(), 0u);
}

// ---------------------------------------------------------------------------
// Writer identity: importer and save_graph_binary agree byte-for-byte

TEST(GraphFormat, ImportAndSaveProduceByteIdenticalFiles) {
  const Graph g = test_graph();
  std::stringstream text;
  write_graph(text, g);

  const std::string imported = temp_path("identity_import.fgb");
  const std::string saved = temp_path("identity_save.fgb");
  const ImportResult res = import_graph(text, imported);
  save_graph_binary(saved, g);

  EXPECT_EQ(res.n, g.num_vertices());
  EXPECT_EQ(res.edges, g.num_edges());
  EXPECT_EQ(res.duplicates, 0u);
  EXPECT_EQ(read_file(imported), read_file(saved));
}

// ---------------------------------------------------------------------------
// The 64-bit offset variant

TEST(GraphFormat, Csr64MatchesCsrStructurally) {
  const Graph g = test_graph();
  const Csr a(g);
  const Csr64 b(g);
  ASSERT_EQ(a.num_arcs(), b.num_arcs());
  ASSERT_EQ(a.offsets().size(), b.offsets().size());
  for (std::size_t i = 0; i < a.offsets().size(); ++i)
    EXPECT_EQ(static_cast<std::uint64_t>(a.offsets()[i]), b.offsets()[i]);
  for (std::size_t i = 0; i < a.arcs().size(); ++i) {
    EXPECT_EQ(a.arcs()[i].to, b.arcs()[i].to);
    EXPECT_EQ(a.arcs()[i].edge, b.arcs()[i].edge);
    EXPECT_EQ(a.arcs()[i].w, b.arcs()[i].w);
  }
}

TEST(GraphFormat, FromEdgesMatchesAdjacencySnapshot) {
  // The writer's scatter path must equal the Csr(Graph) adjacency walk: per
  // vertex, arcs in edge-id order.
  const Graph g = test_graph();
  const Csr64 scattered = Csr64::from_edges(
      g.num_vertices(), std::span<const Edge>(g.edges()));
  const Csr64 walked(g);
  ASSERT_EQ(scattered.num_arcs(), walked.num_arcs());
  for (std::size_t i = 0; i < scattered.offsets().size(); ++i)
    EXPECT_EQ(scattered.offsets()[i], walked.offsets()[i]);
  for (std::size_t i = 0; i < scattered.arcs().size(); ++i) {
    EXPECT_EQ(scattered.arcs()[i].to, walked.arcs()[i].to);
    EXPECT_EQ(scattered.arcs()[i].edge, walked.arcs()[i].edge);
  }
}

TEST(GraphFormat, AutoSelectorPicksNarrowOffsetsWhenTheyFit) {
  const Graph g = grid(3, 3);
  EXPECT_TRUE(std::holds_alternative<Csr>(make_csr_auto(g)));
  EXPECT_FALSE(csr_needs_64bit(std::numeric_limits<std::uint32_t>::max()));
  EXPECT_TRUE(csr_needs_64bit(
      static_cast<std::size_t>(std::numeric_limits<std::uint32_t>::max()) + 1));
}

TEST(GraphFormat, ArcCapacityGuardNamesCountCeilingAndEscapeHatch) {
  // The improved guard message (ISSUE 7 satellite): actual count, the 32-bit
  // ceiling, and the 64-bit path to take instead.
  try {
    csr_check_arc_capacity<std::uint32_t>(std::size_t{1} << 32);
    FAIL() << "expected length_error";
  } catch (const std::length_error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("4294967296"), std::string::npos) << msg;  // the count
    EXPECT_NE(msg.find("4294967295"), std::string::npos) << msg;  // ceiling
    EXPECT_NE(msg.find("Csr64"), std::string::npos) << msg;
    EXPECT_NE(msg.find("make_csr_auto"), std::string::npos) << msg;
  }
  // The 64-bit instantiation accepts the same count.
  EXPECT_NO_THROW(csr_check_arc_capacity<std::uint64_t>(std::size_t{1} << 32));
}

// ---------------------------------------------------------------------------
// Malformed binary wall — every rejection names a byte offset

class GraphFormatWall : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = temp_path("wall.fgb");
    save_graph_binary(path_, test_graph());
    bytes_ = read_file(path_);
  }

  /// Overwrites `len` bytes at `at`, optionally re-stamps the checksum, and
  /// writes the corrupted file back.
  void patch(std::size_t at, const void* src, std::size_t len, bool restamp) {
    std::memcpy(bytes_.data() + at, src, len);
    if (restamp) restamp_checksum(bytes_);
    write_file(path_, bytes_);
  }

  std::string path_;
  std::vector<std::byte> bytes_;
};

TEST_F(GraphFormatWall, TruncatedHeaderRejected) {
  bytes_.resize(40);
  write_file(path_, bytes_);
  expect_load_error(path_, {"truncated", "80"});
}

TEST_F(GraphFormatWall, TruncatedPayloadRejected) {
  bytes_.resize(bytes_.size() - 16);
  write_file(path_, bytes_);
  expect_load_error(path_, {"truncated payload"});
}

TEST_F(GraphFormatWall, EmptyFileRejected) {
  bytes_.clear();
  write_file(path_, bytes_);
  expect_load_error(path_, {"truncated"});
}

TEST_F(GraphFormatWall, BadMagicRejected) {
  const char magic[8] = {'N', 'O', 'T', 'A', 'G', 'R', 'P', 'H'};
  patch(0, magic, sizeof(magic), /*restamp=*/false);
  expect_load_error(path_, {"bad magic"});
}

TEST_F(GraphFormatWall, UnknownVersionRejected) {
  const std::uint32_t version = 2;
  patch(offsetof(GraphFileHeader, version), &version, sizeof(version), false);
  expect_load_error(path_, {"version 2", "byte 8"});
}

TEST_F(GraphFormatWall, UnknownFlagBitsRejected) {
  const std::uint32_t flags = 0x4;
  patch(offsetof(GraphFileHeader, flags), &flags, sizeof(flags), false);
  expect_load_error(path_, {"flags", "byte 12"});
}

TEST_F(GraphFormatWall, VertexCountOverflowRejected) {
  const std::uint64_t n = std::uint64_t{1} << 32;
  patch(offsetof(GraphFileHeader, n), &n, sizeof(n), false);
  expect_load_error(path_, {"vertex count", "overflows", "byte 16"});
}

TEST_F(GraphFormatWall, EdgeCountOverflowRejected) {
  const std::uint64_t m = std::uint64_t{1} << 32;
  patch(offsetof(GraphFileHeader, m), &m, sizeof(m), false);
  expect_load_error(path_, {"edge count", "overflows", "byte 24"});
}

TEST_F(GraphFormatWall, ArcCountDisagreeingWithEdgeCountRejected) {
  std::uint64_t arcs;
  std::memcpy(&arcs, bytes_.data() + offsetof(GraphFileHeader, num_arcs),
              sizeof(arcs));
  ++arcs;
  patch(offsetof(GraphFileHeader, num_arcs), &arcs, sizeof(arcs), false);
  expect_load_error(path_, {"arc count", "2m", "byte 32"});
}

TEST_F(GraphFormatWall, ChecksumMismatchRejected) {
  // Flip one payload byte WITHOUT re-stamping: the checksum must catch it.
  bytes_[sizeof(GraphFileHeader) + 3] ^= std::byte{0xff};
  write_file(path_, bytes_);
  expect_load_error(path_, {"checksum mismatch", "byte 64"});
}

TEST_F(GraphFormatWall, OutOfRangeEndpointRejected) {
  // Corrupt edge 0's `u` beyond n, re-stamp so only the range check trips.
  const Vertex bad = 1000000;
  patch(sizeof(GraphFileHeader) + offsetof(Edge, u), &bad, sizeof(bad), true);
  expect_load_error(path_, {"edge 0", "out of range", "byte 80"});
}

TEST_F(GraphFormatWall, SelfLoopEdgeRejected) {
  Edge e0;
  std::memcpy(&e0, bytes_.data() + sizeof(GraphFileHeader), sizeof(e0));
  const Vertex v = e0.u;
  patch(sizeof(GraphFileHeader) + offsetof(Edge, v), &v, sizeof(v), true);
  expect_load_error(path_, {"edge 0", "self-loop"});
}

TEST_F(GraphFormatWall, NegativeWeightRejected) {
  const double w = -1.0;
  patch(sizeof(GraphFileHeader) + offsetof(Edge, w), &w, sizeof(w), true);
  expect_load_error(path_, {"edge 0", "weight", "negative"});
}

TEST_F(GraphFormatWall, NonFiniteWeightRejected) {
  const double w = std::numeric_limits<double>::quiet_NaN();
  patch(sizeof(GraphFileHeader) + offsetof(Edge, w), &w, sizeof(w), true);
  expect_load_error(path_, {"edge 0", "weight"});
}

TEST_F(GraphFormatWall, NonMonotoneOffsetsRejected) {
  const MappedGraph mg(path_);  // valid before the patch
  const std::size_t offsets_at =
      sizeof(GraphFileHeader) + mg.num_edges() * sizeof(Edge);
  const std::uint64_t bogus = std::uint64_t{0} - 1;
  patch(offsets_at + 1 * sizeof(std::uint64_t), &bogus, sizeof(bogus), true);
  expect_load_error(path_, {"offsets", "monotone"});
}

TEST_F(GraphFormatWall, ArcEdgeCrossDisagreementRejected) {
  // Corrupt arc 0's weight only: the arc no longer matches the edge record
  // it points at, even though both pass their individual range checks.
  const MappedGraph mg(path_);
  const std::size_t arcs_at = sizeof(GraphFileHeader) +
                              mg.num_edges() * sizeof(Edge) +
                              (mg.num_vertices() + 1) * sizeof(std::uint64_t);
  const double w = 123.5;
  patch(arcs_at + offsetof(CsrArc, w), &w, sizeof(w), true);
  expect_load_error(path_, {"arc 0", "disagrees with edge"});
}

TEST_F(GraphFormatWall, MissingFileRejected) {
  EXPECT_THROW(MappedGraph("/nonexistent/dir/graph.fgb"), std::runtime_error);
}

// ---------------------------------------------------------------------------
// Importer wall — every rejection names a line number

TEST(GraphImport, DimacsRoundTripWithDedupAndSelfLoops) {
  // 5 arc lines: a reverse duplicate, a self-loop, and 3 distinct edges.
  std::istringstream is(
      "c tiny instance\n"
      "p sp 4 5\n"
      "a 1 2 1.5\n"
      "a 2 1 1.5\n"
      "a 2 3 2\n"
      "a 3 4 1\n"
      "a 4 4 9\n");
  const std::string path = temp_path("dimacs.fgb");
  const ImportResult res = import_graph(is, path);
  EXPECT_EQ(res.n, 4u);
  EXPECT_EQ(res.edges, 3u);
  EXPECT_EQ(res.arcs_seen, 5u);
  EXPECT_EQ(res.duplicates, 1u);
  EXPECT_EQ(res.self_loops, 1u);
  const Graph g = load_graph_binary(path);
  ASSERT_EQ(g.num_edges(), 3u);
  // 1-based DIMACS endpoints land 0-based, first occurrence's weight wins.
  EXPECT_EQ(g.edge(0).u, 0u);
  EXPECT_EQ(g.edge(0).v, 1u);
  EXPECT_EQ(g.edge(0).w, 1.5);
}

TEST(GraphImport, DimacsEdgeLinesDefaultToUnitWeight) {
  std::istringstream is("p edge 3 2\ne 1 2\ne 2 3 4.5\n");
  const ImportResult res =
      import_graph(is, temp_path("dimacs_e.fgb"), ImportFormat::kDimacs);
  EXPECT_EQ(res.edges, 2u);
  const Graph g = load_graph_binary(temp_path("dimacs_e.fgb"));
  EXPECT_EQ(g.edge(0).w, 1.0);
  EXPECT_EQ(g.edge(1).w, 4.5);
}

TEST(GraphImport, AutoDetectionPicksTheRightGrammar) {
  std::istringstream dimacs("c x\np sp 2 1\na 1 2 1\n");
  std::istringstream edgelist("# comment first\n2 1 u\n0 1 3.5\n");
  const ImportResult a = import_graph(dimacs, temp_path("sniff_d.fgb"));
  const ImportResult b = import_graph(edgelist, temp_path("sniff_e.fgb"));
  EXPECT_EQ(a.edges, 1u);
  EXPECT_EQ(b.edges, 1u);
  EXPECT_EQ(load_graph_binary(temp_path("sniff_e.fgb")).edge(0).w, 3.5);
}

TEST(GraphImport, RejectsEndpointOutOfRange) {
  expect_import_error("p sp 3 1\na 1 7 1\n", ImportFormat::kDimacs,
                      {"line 2", "out of range"});
  expect_import_error("3 1 u\n0 3 1\n", ImportFormat::kEdgeList,
                      {"line 2", "out of range"});
}

TEST(GraphImport, RejectsNegativeWeight) {
  expect_import_error("p sp 3 1\na 1 2 -4\n", ImportFormat::kDimacs,
                      {"line 2", "negative"});
}

TEST(GraphImport, RejectsSignedIntegerFields) {
  // strtoull quietly accepts a leading '+'; the grammar is unsigned decimals
  // only (matching the scenario parser's parse_u64, which rejects both
  // signs). '-' keeps its dedicated "is negative" message.
  expect_import_error("p sp 3 2\na +1 2 1\na 2 3 1\n", ImportFormat::kDimacs,
                      {"line 2", "endpoint", "sign"});
  expect_import_error("p sp +3 2\na 1 2 1\na 2 3 1\n", ImportFormat::kDimacs,
                      {"line 1", "vertex count", "sign"});
  expect_import_error("3 2 u\n+0 1 1\n1 2 1\n", ImportFormat::kEdgeList,
                      {"line 2", "endpoint", "sign"});
  expect_import_error("3 1 u\n0 -1 1\n", ImportFormat::kEdgeList,
                      {"line 2", "endpoint", "negative"});
}

TEST(GraphImport, RejectsCountOverflow) {
  expect_import_error("p sp 4294967296 1\na 1 2 1\n", ImportFormat::kDimacs,
                      {"line 1", "vertex count", "overflows"});
  expect_import_error("2 4294967296 u\n", ImportFormat::kEdgeList,
                      {"line 1", "edge count", "overflows"});
}

TEST(GraphImport, RejectsArcBeforeProblemLine) {
  expect_import_error("a 1 2 1\n", ImportFormat::kDimacs,
                      {"line 1", "before the problem"});
}

TEST(GraphImport, RejectsDuplicateProblemLine) {
  expect_import_error("p sp 2 1\np sp 2 1\na 1 2 1\n", ImportFormat::kDimacs,
                      {"line 2", "duplicate problem"});
}

TEST(GraphImport, RejectsUnknownLineType) {
  expect_import_error("p sp 2 1\nq 1 2 1\n", ImportFormat::kDimacs,
                      {"line 2", "unknown line type 'q'"});
}

TEST(GraphImport, RejectsArcCountMismatch) {
  expect_import_error("p sp 3 2\na 1 2 1\n", ImportFormat::kDimacs,
                      {"arc count mismatch"});
  expect_import_error("3 2 u\n0 1 1\n", ImportFormat::kEdgeList,
                      {"truncated edge list"});
  expect_import_error("2 1 u\n0 1 1\n1 0 2\n", ImportFormat::kEdgeList,
                      {"line 3", "more edge lines"});
}

TEST(GraphImport, RejectsDirectedEdgeListHeader) {
  expect_import_error("3 1 d\n0 1 1\n", ImportFormat::kEdgeList,
                      {"line 1", "directed"});
}

TEST(GraphImport, RejectsTrailingGarbage) {
  expect_import_error("p sp 2 1\na 1 2 1 junk\n", ImportFormat::kDimacs,
                      {"line 2", "trailing garbage"});
}

TEST(GraphImport, AcceptsCrlfAndInlineComments) {
  std::istringstream is("3 2 U\r\n0 1 1.5 # first\r\n1 2 2.5\r\n");
  const ImportResult res =
      import_graph(is, temp_path("crlf.fgb"), ImportFormat::kEdgeList);
  EXPECT_EQ(res.edges, 2u);
  EXPECT_EQ(load_graph_binary(temp_path("crlf.fgb")).edge(0).w, 1.5);
}

TEST(GraphImport, MissingInputFileThrows) {
  EXPECT_THROW(import_graph_file("/nonexistent/in.gr", temp_path("x.fgb")),
               std::runtime_error);
}

}  // namespace
}  // namespace ftspan
