#include "spanner2/lll.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "graph/generators.hpp"
#include "spanner2/rounding.hpp"
#include "spanner2/verify2.hpp"

namespace ftspan {
namespace {

TEST(Lll, ValidOnBoundedDegreeGraphs) {
  for (std::uint64_t seed : {1ull, 2ull}) {
    const Digraph g = di_bounded_degree(40, 6, 0.7, seed);
    for (std::size_t r : {0u, 1u}) {
      const auto res = lll_ft_2spanner(g, r, seed * 3 + r);
      EXPECT_TRUE(res.valid) << "seed=" << seed << " r=" << r;
      EXPECT_TRUE(is_ft_2spanner(g, res.in_spanner, r));
    }
  }
}

TEST(Lll, AlphaUsesLogDelta) {
  const Digraph g = di_bounded_degree(40, 6, 0.7, 5);
  const auto res = lll_ft_2spanner(g, 0, 1);
  EXPECT_NEAR(res.alpha, std::log(static_cast<double>(g.max_degree())), 1e-9);
}

TEST(Lll, ConvergesAndReportsResamples) {
  const Digraph g = di_bounded_degree(30, 5, 0.7, 7);
  LllOptions opt;
  opt.alpha_constant = 3.0;  // generous alpha -> few / no resamples
  const auto res = lll_ft_2spanner(g, 0, 2, opt);
  EXPECT_TRUE(res.converged);
  EXPECT_EQ(res.repaired_edges, 0u);
  EXPECT_TRUE(res.valid);
}

TEST(Lll, CostBoundedByBudgetEvents) {
  // When converged, no B_u occurred: |E'| <= 2 · 4α Σ_e x_e.
  const Digraph g = di_bounded_degree(40, 6, 0.8, 9);
  LllOptions opt;
  opt.alpha_constant = 2.0;
  const auto res = lll_ft_2spanner(g, 1, 3, opt);
  ASSERT_TRUE(res.converged);
  double x_mass = 0;
  for (double x : res.relaxation.x) x_mass += x;
  EXPECT_LE(spanner_cost(g, res.in_spanner),
            opt.budget_factor * 2.0 * res.alpha * x_mass + 1e-6);
}

TEST(Lll, CheaperOrComparableToLogNRoundingOnBoundedDegree) {
  // The Theorem 3.4 claim in miniature: log Δ < log n when Δ << n, so the
  // LLL rounding should generally not cost more. Average over seeds to damp
  // randomness; assert a generous factor.
  double lll_total = 0, logn_total = 0;
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    const Digraph g = di_bounded_degree(60, 4, 0.7, seed);
    const auto lll = lll_ft_2spanner(g, 0, seed);
    const auto logn = approx_ft_2spanner(g, 0, seed);
    EXPECT_TRUE(lll.valid);
    EXPECT_TRUE(logn.valid);
    lll_total += lll.cost;
    logn_total += logn.cost;
  }
  EXPECT_LT(lll_total, 1.5 * logn_total);
}

TEST(Lll, ResampleCapTriggersRepair) {
  const Digraph g = di_bounded_degree(30, 5, 0.8, 11);
  LllOptions opt;
  opt.alpha = 1e-9;       // rounding keeps nothing; events always violated
  opt.max_resamples = 10; // force the cap
  const auto res = lll_ft_2spanner(g, 1, 5, opt);
  EXPECT_FALSE(res.converged);
  EXPECT_TRUE(res.valid);  // repair still guarantees validity
  EXPECT_GT(res.repaired_edges, 0u);
}

TEST(Lll, EmptyGraphTrivial) {
  Digraph g(5);
  const auto res = lll_ft_2spanner(g, 2, 1);
  EXPECT_TRUE(res.valid);
  EXPECT_TRUE(res.converged);
  EXPECT_DOUBLE_EQ(res.cost, 0.0);
}

}  // namespace
}  // namespace ftspan
