#include "graph/union_find.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace ftspan {
namespace {

TEST(UnionFind, InitiallySingletons) {
  UnionFind uf(5);
  EXPECT_EQ(uf.num_components(), 5u);
  for (Vertex v = 0; v < 5; ++v) {
    EXPECT_EQ(uf.find(v), v);
    EXPECT_EQ(uf.component_size(v), 1u);
  }
}

TEST(UnionFind, UniteMergesAndCounts) {
  UnionFind uf(5);
  EXPECT_TRUE(uf.unite(0, 1));
  EXPECT_TRUE(uf.unite(2, 3));
  EXPECT_EQ(uf.num_components(), 3u);
  EXPECT_TRUE(uf.same(0, 1));
  EXPECT_FALSE(uf.same(0, 2));
  EXPECT_TRUE(uf.unite(1, 3));
  EXPECT_TRUE(uf.same(0, 2));
  EXPECT_EQ(uf.component_size(3), 4u);
  EXPECT_EQ(uf.num_components(), 2u);
}

TEST(UnionFind, UniteSameComponentReturnsFalse) {
  UnionFind uf(3);
  uf.unite(0, 1);
  EXPECT_FALSE(uf.unite(1, 0));
  EXPECT_EQ(uf.num_components(), 2u);
}

TEST(UnionFind, RandomStressAgainstNaive) {
  const std::size_t n = 200;
  UnionFind uf(n);
  std::vector<int> label(n);
  for (std::size_t i = 0; i < n; ++i) label[i] = static_cast<int>(i);

  Rng rng(99);
  for (int op = 0; op < 500; ++op) {
    const Vertex a = static_cast<Vertex>(rng.uniform_index(n));
    const Vertex b = static_cast<Vertex>(rng.uniform_index(n));
    uf.unite(a, b);
    const int la = label[a], lb = label[b];
    if (la != lb)
      for (std::size_t i = 0; i < n; ++i)
        if (label[i] == lb) label[i] = la;
    // Spot-check equivalence.
    const Vertex c = static_cast<Vertex>(rng.uniform_index(n));
    const Vertex d = static_cast<Vertex>(rng.uniform_index(n));
    EXPECT_EQ(uf.same(c, d), label[c] == label[d]);
  }
}

}  // namespace
}  // namespace ftspan
