#include "ftspanner/conversion.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "ftspanner/validate.hpp"
#include "graph/generators.hpp"
#include "spanner/baswana_sen.hpp"
#include "spanner/greedy.hpp"

namespace ftspan {
namespace {

TEST(ConversionIterations, MatchesFormula) {
  // alpha = ceil(c (r+2) ln n / q), q = keep² (1-keep)^r.
  // r = 2: keep 1/2, q = 1/16 -> ceil(4 ln 100 * 16) = 295.
  EXPECT_EQ(conversion_iterations(2, 100, 1.0), 295u);
  // r = 1: keep 1/2, q = 1/8 -> ceil(3 ln 100 * 8) = 111.
  EXPECT_EQ(conversion_iterations(1, 100, 1.0), 111u);
  // r = 0 is clamped to 1.
  EXPECT_EQ(conversion_iterations(0, 100, 1.0), conversion_iterations(1, 100, 1.0));
  // The constant scales linearly.
  EXPECT_EQ(conversion_iterations(2, 100, 2.0), 590u);
  // Θ(r³ log n): the ratio alpha(2r)/alpha(r) approaches 8.
  EXPECT_NEAR(static_cast<double>(conversion_iterations(8, 4096, 1.0)) /
                  static_cast<double>(conversion_iterations(4, 4096, 1.0)),
              8.0, 3.0);
}

TEST(Conversion, RejectsR0) {
  const Graph g = complete(5);
  EXPECT_THROW(ft_greedy_spanner(g, 3.0, 0, 1), std::invalid_argument);
}

TEST(Conversion, KeepProbabilityMatchesPaper) {
  const Graph g = complete(12);
  ConversionOptions opt;
  opt.iterations = 1;
  EXPECT_DOUBLE_EQ(ft_greedy_spanner(g, 3.0, 1, 1, opt).keep_probability, 0.5);
  EXPECT_DOUBLE_EQ(ft_greedy_spanner(g, 3.0, 2, 1, opt).keep_probability, 0.5);
  EXPECT_DOUBLE_EQ(ft_greedy_spanner(g, 3.0, 4, 1, opt).keep_probability, 0.25);
}

TEST(Conversion, OneFaultCompleteGraphIsFtValid) {
  const Graph g = complete(14);
  const auto res = ft_greedy_spanner(g, 3.0, 1, 42);
  const auto check =
      check_ft_spanner_exact(g, g.edge_subgraph(res.edges), 3.0, 1);
  EXPECT_TRUE(check.valid) << "worst stretch " << check.worst_stretch;
}

TEST(Conversion, TwoFaultsGnpIsFtValid) {
  const Graph g = gnp(18, 0.5, 7);
  const auto res = ft_greedy_spanner(g, 3.0, 2, 43);
  const auto check =
      check_ft_spanner_exact(g, g.edge_subgraph(res.edges), 3.0, 2);
  EXPECT_TRUE(check.valid) << "worst stretch " << check.worst_stretch;
}

TEST(Conversion, PlainGreedyFailsWhereConversionHolds) {
  // Sanity for the whole exercise: a non-FT spanner of K_n (a star-ish
  // greedy output) is NOT 1-fault tolerant, while the conversion output is.
  const Graph g = complete(12);
  const Graph plain = greedy_spanner_graph(g, 3.0);
  const auto plain_check = check_ft_spanner_exact(g, plain, 3.0, 1);
  EXPECT_FALSE(plain_check.valid);

  const auto res = ft_greedy_spanner(g, 3.0, 1, 44);
  EXPECT_TRUE(check_ft_spanner_exact(g, g.edge_subgraph(res.edges), 3.0, 1).valid);
}

TEST(Conversion, SizeWithinCorollaryBound) {
  const Graph g = gnp(60, 0.4, 11);
  const auto res = ft_greedy_spanner(g, 3.0, 2, 45);
  // Corollary 2.2 with a generous constant (and never more than all edges).
  EXPECT_LE(res.edges.size(), g.num_edges());
  EXPECT_LT(static_cast<double>(res.edges.size()),
            8.0 * corollary22_size_bound(60, 3.0, 2));
}

TEST(Conversion, IterationOverrideHonored) {
  const Graph g = complete(10);
  ConversionOptions opt;
  opt.iterations = 5;
  const auto res = ft_greedy_spanner(g, 3.0, 3, 46, opt);
  EXPECT_EQ(res.iterations, 5u);
}

TEST(Conversion, MaxSurvivorsTracksOversampling) {
  const Graph g = complete(64);
  ConversionOptions opt;
  opt.iterations = 50;
  const auto res = ft_greedy_spanner(g, 3.0, 4, 47, opt);
  // keep prob 1/4: survivors should hover near 16, certainly below 2n/r = 32
  // in most iterations (the proof's Chernoff bound); max over 50 iterations
  // stays below n.
  EXPECT_GT(res.max_survivors, 4u);
  EXPECT_LT(res.max_survivors, 40u);
}

TEST(Conversion, WorksWithBaswanaSenBase) {
  const Graph g = gnp(16, 0.6, 13);
  const BaseSpanner base = [](const Graph& graph, const VertexSet* mask,
                              std::uint64_t seed) {
    return baswana_sen_spanner(graph, 2, seed, mask);
  };
  const auto res = fault_tolerant_spanner(g, 1, base, 48);
  const auto check =
      check_ft_spanner_exact(g, g.edge_subgraph(res.edges), 3.0, 1);
  EXPECT_TRUE(check.valid) << "worst stretch " << check.worst_stretch;
}

TEST(Conversion, DeterministicPerSeed) {
  const Graph g = gnp(20, 0.4, 3);
  ConversionOptions opt;
  opt.iterations = 20;
  const auto a = ft_greedy_spanner(g, 3.0, 2, 99, opt);
  const auto b = ft_greedy_spanner(g, 3.0, 2, 99, opt);
  EXPECT_EQ(a.edges, b.edges);
}

TEST(SizeBounds, Clpr09GrowsExponentiallyInR) {
  // The point of Theorem 1.1: poly vs exponential r-dependence.
  const double ours_r2 = corollary22_size_bound(1000, 3.0, 2);
  const double ours_r8 = corollary22_size_bound(1000, 3.0, 8);
  const double clpr_r2 = clpr09_size_bound(1000, 3.0, 2);
  const double clpr_r8 = clpr09_size_bound(1000, 3.0, 8);
  const double ours_growth = ours_r8 / ours_r2;
  const double clpr_growth = clpr_r8 / clpr_r2;
  EXPECT_LT(ours_growth, 10.0);     // ~ (8/2)^{3/2} = 8
  EXPECT_GT(clpr_growth, 1000.0);   // ~ 16 * 2^6 * ... — exponential in r
}

// Property sweep: validity across (n, r, k) for exact-checkable sizes.
class ConversionSweep
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t, double>> {};

TEST_P(ConversionSweep, ExactlyFaultTolerant) {
  const auto [n, r, k] = GetParam();
  const Graph g = gnp(n, 0.6, 100 + n + r);
  const auto res = ft_greedy_spanner(g, k, r, 1000 + n * r);
  const auto check = check_ft_spanner_exact(g, g.edge_subgraph(res.edges), k, r);
  EXPECT_TRUE(check.valid)
      << "n=" << n << " r=" << r << " k=" << k << " stretch "
      << check.worst_stretch;
}

INSTANTIATE_TEST_SUITE_P(
    Grid, ConversionSweep,
    ::testing::Combine(::testing::Values<std::size_t>(10, 14),
                       ::testing::Values<std::size_t>(1, 2),
                       ::testing::Values(3.0, 5.0)));

}  // namespace
}  // namespace ftspan
