#include "ftspanner/baselines.hpp"

#include <gtest/gtest.h>

#include "ftspanner/validate.hpp"
#include "graph/generators.hpp"
#include "spanner/greedy.hpp"

namespace ftspan {
namespace {

BaseSpanner greedy_base(double k) {
  return [k](const Graph& g, const VertexSet* mask, std::uint64_t) {
    return greedy_spanner(g, k, mask);
  };
}

TEST(UnionOverFaults, IsAlwaysFaultTolerant) {
  const Graph g = gnp(12, 0.5, 3);
  const auto edges = union_over_faults_spanner(g, 2, greedy_base(3.0), 1);
  const auto check =
      check_ft_spanner_exact(g, g.edge_subgraph(edges), 3.0, 2);
  EXPECT_TRUE(check.valid) << check.worst_stretch;
}

TEST(UnionOverFaults, R0EqualsPlainGreedy) {
  const Graph g = gnp(15, 0.4, 5);
  const auto union_edges = union_over_faults_spanner(g, 0, greedy_base(3.0), 1);
  auto plain = greedy_spanner(g, 3.0);  // in weight order; union is id-sorted
  std::sort(plain.begin(), plain.end());
  EXPECT_EQ(union_edges, plain);
}

TEST(UnionOverFaults, ThrowsOnTooManySets) {
  const Graph g = gnp(200, 0.05, 1);
  EXPECT_THROW(union_over_faults_spanner(g, 5, greedy_base(3.0), 1),
               std::runtime_error);
}

TEST(UnionOverFaults, SizeGrowsWithR) {
  const Graph g = complete(12);
  const auto r0 = union_over_faults_spanner(g, 0, greedy_base(3.0), 1);
  const auto r1 = union_over_faults_spanner(g, 1, greedy_base(3.0), 1);
  const auto r2 = union_over_faults_spanner(g, 2, greedy_base(3.0), 1);
  EXPECT_LT(r0.size(), r1.size());
  EXPECT_LE(r1.size(), r2.size());
}

TEST(LayeredGreedy, LayersAreEdgeDisjointSupersets) {
  const Graph g = complete(16);
  const auto l0 = layered_greedy_spanner(g, 3.0, 0);
  const auto l2 = layered_greedy_spanner(g, 3.0, 2);
  EXPECT_LT(l0.size(), l2.size());
  // Layer 0 alone equals the plain greedy spanner.
  EXPECT_EQ(l0.size(), greedy_spanner(g, 3.0).size());
}

TEST(LayeredGreedy, IsNotVertexFaultTolerantOnStarLikeGraphs) {
  // The documented weakness: edge-disjoint layers can share cut vertices.
  // On a graph where all cheap alternatives go through one hub, one vertex
  // fault kills every layer. Build: two terminals plus a single hub and a
  // long detour.
  Graph g(6);
  g.add_edge(0, 1, 1.0);   // hub edges
  g.add_edge(1, 2, 1.0);
  g.add_edge(0, 2, 10.0);  // the edge to span
  g.add_edge(0, 3, 10.0);  // expensive detour 0-3-4-5-2
  g.add_edge(3, 4, 10.0);
  g.add_edge(4, 5, 10.0);
  g.add_edge(5, 2, 10.0);
  const auto edges = layered_greedy_spanner(g, 3.0, 1);
  const Graph h = g.edge_subgraph(edges);
  const auto check = check_ft_spanner_exact(g, h, 3.0, 1);
  // Not asserting failure is guaranteed on every graph — but this gadget is
  // constructed so that a single fault (the hub) must break some layer pair.
  // What we *do* check: validity of the union construction differs from the
  // layered heuristic here in at least one direction.
  if (!check.valid) SUCCEED();
  else {
    // If layered happened to survive, it must have kept the heavy edge.
    EXPECT_TRUE(h.has_edge(0, 2));
  }
}

TEST(LayeredGreedy, RejectsBadStretch) {
  EXPECT_THROW(layered_greedy_spanner(path(4), 0.5, 1), std::invalid_argument);
}

}  // namespace
}  // namespace ftspan
