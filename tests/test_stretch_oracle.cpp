// Unit tests for the StretchOracle subsystem (src/validate/): the
// shared pooled Dijkstra engine and the batched oracle itself.
#include "validate/stretch_oracle.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "graph/generators.hpp"
#include "graph/shortest_paths.hpp"
#include "spanner/greedy.hpp"
#include "spanner/verify.hpp"

namespace ftspan {
namespace {

TEST(DijkstraEngine, MatchesDijkstraAcrossReusedRuns) {
  const Graph g = gnp(40, 0.15, 7, 5.0);
  DijkstraEngine scratch;
  // Reuse the same scratch for many sources; each run must invalidate the
  // previous one completely (the epoch stamp, not an O(n) clear).
  for (Vertex s = 0; s < g.num_vertices(); s += 3) {
    scratch.run(g, s, nullptr);
    const auto ref = dijkstra(g, s);
    for (Vertex v = 0; v < g.num_vertices(); ++v) {
      EXPECT_EQ(scratch.dist(v), ref.dist[v]) << "s=" << s << " v=" << v;
      EXPECT_EQ(scratch.reachable(v), ref.reachable(v));
    }
  }
}

TEST(DijkstraEngine, RespectsFaultMask) {
  const Graph g = gnp(30, 0.2, 3);
  const VertexSet faults(30, {2, 11, 17});
  DijkstraEngine scratch;
  scratch.run(g, 0, &faults);
  const auto ref = dijkstra(g, 0, &faults);
  for (Vertex v = 0; v < g.num_vertices(); ++v)
    EXPECT_EQ(scratch.dist(v), ref.dist[v]) << "v=" << v;
}

TEST(DijkstraEngine, TargetedRunSettlesTargetsExactly) {
  const Graph g = gnp(50, 0.12, 11, 3.0);
  const auto ref = dijkstra(g, 5);
  DijkstraEngine scratch;
  const std::vector<Vertex> targets{1, 17, 33, 49};
  scratch.run(g, 5, nullptr, targets);
  for (const Vertex t : targets)
    EXPECT_EQ(scratch.dist(t), ref.dist[t]) << "t=" << t;
}

TEST(DijkstraEngine, ParentChainOfSettledTargetIsAShortestPath) {
  const Graph g = gnp(40, 0.15, 13, 4.0);
  const Vertex source = 0, target = 31;
  const auto ref = dijkstra(g, source);
  if (!ref.reachable(target)) GTEST_SKIP();
  DijkstraEngine scratch;
  const Vertex t[1] = {target};
  scratch.run(g, source, nullptr, std::span<const Vertex>(t, 1));
  // Walk the parent chain and re-add the weights: must equal dist(target).
  Weight walked = 0;
  Vertex x = target;
  while (x != source) {
    const Vertex p = scratch.parent(x);
    ASSERT_NE(p, kInvalidVertex);
    walked += g.edge(*g.edge_id(p, x)).w;
    x = p;
  }
  EXPECT_DOUBLE_EQ(walked, ref.dist[target]);
}

TEST(DijkstraEngine, BoundLeavesFarVerticesAtInfinity) {
  const Graph g = path(6);  // unit weights, distances 0..5 from vertex 0
  DijkstraEngine scratch;
  scratch.run(g, 0, nullptr, {}, /*bound=*/2.0);
  EXPECT_DOUBLE_EQ(scratch.dist(2), 2.0);
  EXPECT_EQ(scratch.dist(3), kInfiniteWeight);
}

TEST(StretchOracle, ThrowsOnVertexCountMismatch) {
  const Graph g = path(4);
  const Graph h(3);
  EXPECT_THROW(StretchOracle(g, h, 2.0), std::invalid_argument);
}

TEST(StretchOracle, MaxStretchAgreesWithPerPairBruteForce) {
  const Graph g = gnp_connected(24, 0.25, 5, 3.0);
  // Thin the graph to create stretch.
  std::vector<EdgeId> kept;
  for (EdgeId id = 0; id < g.num_edges(); ++id)
    if (id % 5 != 0) kept.push_back(id);
  const Graph h = g.edge_subgraph(kept);

  // Brute force: one Dijkstra pair per edge — the pre-oracle formulation.
  double brute = 1.0;
  for (const Edge& e : g.edges()) {
    const auto dg = dijkstra(g, e.u);
    const auto dh = dijkstra(h, e.u);
    if (!dg.reachable(e.v) || dg.dist[e.v] <= 0) continue;
    const double s = dh.reachable(e.v) ? dh.dist[e.v] / dg.dist[e.v]
                                       : kInfiniteWeight;
    brute = std::max(brute, s);
  }
  EXPECT_DOUBLE_EQ(StretchOracle(g, h, 3.0).max_stretch(), brute);
  EXPECT_DOUBLE_EQ(max_edge_stretch(g, h), brute);
}

TEST(StretchOracle, EvaluateSetsAgreesWithPerSetBruteForce) {
  const Graph g = gnp(26, 0.3, 9, 2.0);
  const Graph h = greedy_spanner_graph(g, 3.0);
  std::vector<VertexSet> sets;
  sets.emplace_back(26);  // empty set
  sets.emplace_back(26, std::initializer_list<Vertex>{3});
  sets.emplace_back(26, std::initializer_list<Vertex>{1, 8});
  sets.emplace_back(26, std::initializer_list<Vertex>{0, 13, 25});

  double brute = 1.0;
  for (const VertexSet& f : sets)
    for (const Edge& e : g.edges()) {
      if (f.contains(e.u) || f.contains(e.v)) continue;
      const auto dg = dijkstra(g, e.u, &f);
      const auto dh = dijkstra(h, e.u, &f);
      if (!dg.reachable(e.v) || dg.dist[e.v] <= 0) continue;
      const double s = dh.reachable(e.v) ? dh.dist[e.v] / dg.dist[e.v]
                                         : kInfiniteWeight;
      brute = std::max(brute, s);
    }

  const FtCheckResult res = StretchOracle(g, h, 3.0).evaluate_sets(sets);
  EXPECT_DOUBLE_EQ(res.worst_stretch, brute);
  EXPECT_EQ(res.fault_sets_checked, sets.size());
  EXPECT_EQ(max_edge_stretch_sets(g, h, 3.0, sets).worst_stretch, brute);
}

TEST(StretchOracle, WitnessFaultSetReallyAchievesTheWorstStretch) {
  const Graph g = complete(9);
  const Graph h = star(9);
  const FtCheckResult res = StretchOracle(g, h, 2.0).check_exact(1);
  ASSERT_FALSE(res.valid);
  // Re-evaluating the reported witness fault set alone must reproduce the
  // reported worst stretch and pair.
  const StretchOracle oracle(g, h, 2.0);
  const FtCheckResult replay =
      oracle.evaluate_sets({res.witness_faults});
  EXPECT_DOUBLE_EQ(replay.worst_stretch, res.worst_stretch);
  EXPECT_EQ(replay.witness_u, res.witness_u);
  EXPECT_EQ(replay.witness_v, res.witness_v);
}

TEST(StretchOracle, ExactCheckCountsAllFaultSets) {
  const Graph g = gnp(11, 0.5, 2);
  const FtCheckResult res = StretchOracle(g, g, 3.0).check_exact(2);
  EXPECT_TRUE(res.valid);
  EXPECT_DOUBLE_EQ(res.worst_stretch, 1.0);
  EXPECT_EQ(res.fault_sets_checked, count_fault_sets(11, 2));
}

TEST(StretchOracle, ExactCheckOverflowReportsParameters) {
  const Graph g = gnp(100, 0.1, 1);
  try {
    StretchOracle(g, g, 3.0).check_exact(8);
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("n=100"), std::string::npos) << msg;
    EXPECT_NE(msg.find("r=8"), std::string::npos) << msg;
    EXPECT_NE(msg.find(std::to_string(count_fault_sets(100, 8))),
              std::string::npos)
        << msg;
  }
}

TEST(StretchOracle, SampledCheckCountsTrials) {
  const Graph g = complete(10);
  const FtCheckResult res =
      StretchOracle(g, g, 2.0).check_sampled(1, 17, 9, 5);
  EXPECT_TRUE(res.valid);
  EXPECT_EQ(res.fault_sets_checked, 26u);
}

TEST(StretchOracle, AdversaryStillFindsTheStarWeakness) {
  const Graph g = complete(40);
  const Graph h = star(40);
  const FtCheckResult res =
      StretchOracle(g, h, 2.0).check_sampled(1, 0, 50, 5);
  EXPECT_FALSE(res.valid);
  EXPECT_TRUE(res.witness_faults.contains(0));  // the star center
}

TEST(DiStretchOracle, DirectedStretchIsDirectionAware) {
  // g: 0 -> 1 directly and 0 -> 2 -> 1 as a detour; h drops the direct arc.
  Digraph g(3);
  g.add_edge(0, 1, 1.0);
  g.add_edge(0, 2, 1.0);
  g.add_edge(2, 1, 1.0);
  Digraph h(3);
  h.add_edge(0, 2, 1.0);
  h.add_edge(2, 1, 1.0);
  EXPECT_DOUBLE_EQ(DiStretchOracle(g, h, 2.0).max_stretch(), 2.0);
  EXPECT_TRUE(DiStretchOracle(g, h, 2.0).check_exact(0).valid);
  // Failing the detour vertex disconnects 0 -> 1 in H but not in G.
  const FtCheckResult res = DiStretchOracle(g, h, 2.0).check_exact(1);
  EXPECT_FALSE(res.valid);
  EXPECT_EQ(res.worst_stretch, kInfiniteWeight);
  EXPECT_TRUE(res.witness_faults.contains(2));
}

TEST(SampleFaultSet, DeterministicAndCorrectSize) {
  std::vector<Vertex> pool_a, pool_b;
  VertexSet a(50), b(50);
  Rng rng_a(99), rng_b(99);
  sample_fault_set(rng_a, 7, pool_a, a);
  sample_fault_set(rng_b, 7, pool_b, b);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.count(), 7u);
  // A different stream draws a different set (overwhelmingly likely).
  Rng rng_c(100);
  VertexSet c(50);
  sample_fault_set(rng_c, 7, pool_a, c);
  EXPECT_FALSE(a == c);
}

TEST(SampleFaultSet, HandlesDegenerateSizes) {
  std::vector<Vertex> pool;
  VertexSet out(4);
  Rng rng(1);
  sample_fault_set(rng, 0, pool, out);
  EXPECT_TRUE(out.empty());
  sample_fault_set(rng, 4, pool, out);  // whole universe
  EXPECT_EQ(out.count(), 4u);
  sample_fault_set(rng, 9, pool, out);  // clamped to the universe
  EXPECT_EQ(out.count(), 4u);
}

}  // namespace
}  // namespace ftspan
