#include "spanner2/exact_bb.hpp"

#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "spanner2/formulation.hpp"
#include "spanner2/rounding.hpp"
#include "spanner2/verify2.hpp"

namespace ftspan {
namespace {

TEST(ExactBb, EmptyGraphCostsZero) {
  Digraph g(4);
  const auto res = exact_min_ft_2spanner(g, 1);
  EXPECT_TRUE(res.proven_optimal);
  EXPECT_DOUBLE_EQ(res.cost, 0.0);
}

TEST(ExactBb, LoneEdgeMustBeBought) {
  Digraph g(2);
  g.add_edge(0, 1, 7.0);
  const auto res = exact_min_ft_2spanner(g, 0);
  EXPECT_TRUE(res.proven_optimal);
  EXPECT_DOUBLE_EQ(res.cost, 7.0);
}

TEST(ExactBb, TriangleR0) {
  // 0->1 (1), 1->2 (1), 0->2 (3): OPT keeps all — dropping 0->2 needs both
  // unit arcs anyway (cost 2 < 3 only if we can drop it; but dropping 0->2
  // still requires covering it with the single 2-path, cost 1+1=2 already
  // paid for covering the unit edges... so OPT = min(2+3, 2+2) = 4? No:
  // (0,1) and (1,2) have no 2-paths, so both must be in any spanner. (0,2)
  // is covered by the path 0->1->2 for r=0. OPT = 2.
  Digraph g(3);
  g.add_edge(0, 1, 1.0);
  g.add_edge(1, 2, 1.0);
  g.add_edge(0, 2, 3.0);
  const auto res = exact_min_ft_2spanner(g, 0);
  EXPECT_TRUE(res.proven_optimal);
  EXPECT_DOUBLE_EQ(res.cost, 2.0);
  EXPECT_FALSE(res.in_spanner[*g.edge_id(0, 2)]);
}

TEST(ExactBb, TriangleR1ForcesDirectEdge) {
  // Same triangle, r = 1: one 2-path is not r+1 = 2, so (0,2) must be kept.
  Digraph g(3);
  g.add_edge(0, 1, 1.0);
  g.add_edge(1, 2, 1.0);
  g.add_edge(0, 2, 3.0);
  const auto res = exact_min_ft_2spanner(g, 1);
  EXPECT_TRUE(res.proven_optimal);
  EXPECT_DOUBLE_EQ(res.cost, 5.0);
  EXPECT_TRUE(res.in_spanner[*g.edge_id(0, 2)]);
}

TEST(ExactBb, GapGadgetOptimum) {
  // r midpoints, fault tolerance r: the direct edge is mandatory; the unit
  // arcs are mandatory too (each (0,w_i) and (w_i,1) has no 2-path).
  const std::size_t r = 3;
  const Digraph g = gap_gadget(r, 50.0);
  const auto res = exact_min_ft_2spanner(g, r);
  EXPECT_TRUE(res.proven_optimal);
  EXPECT_DOUBLE_EQ(res.cost, 50.0 + 2.0 * r);
}

TEST(ExactBb, ResultIsValidAndBelowHeuristics) {
  for (std::uint64_t seed : {1ull, 2ull, 3ull}) {
    const Digraph g = di_gnp(8, 0.5, seed);
    for (std::size_t r : {0u, 1u}) {
      const auto exact = exact_min_ft_2spanner(g, r);
      EXPECT_TRUE(exact.proven_optimal);
      EXPECT_TRUE(is_ft_2spanner(g, exact.in_spanner, r));

      const auto greedy = greedy_ft_2spanner(g, r);
      EXPECT_LE(exact.cost, spanner_cost(g, greedy) + 1e-6);

      const auto lp = solve_lp4(g, r);
      ASSERT_EQ(lp.status, LpStatus::kOptimal);
      EXPECT_GE(exact.cost, lp.value - 1e-6);
    }
  }
}

TEST(ExactBb, MatchesRoundingLowerBoundSandwich) {
  // LP* <= OPT <= rounded cost.
  const Digraph g = di_gnp(9, 0.45, 7);
  const std::size_t r = 1;
  const auto exact = exact_min_ft_2spanner(g, r);
  const auto rounded = approx_ft_2spanner(g, r, 3);
  ASSERT_TRUE(exact.proven_optimal);
  ASSERT_TRUE(rounded.valid);
  EXPECT_GE(exact.cost, rounded.lp_value - 1e-6);
  EXPECT_LE(exact.cost, rounded.cost + 1e-6);
}

TEST(ExactBb, NodeCapReportsNotProven) {
  const Digraph g = di_gnp(10, 0.6, 11);
  ExactOptions opt;
  opt.max_nodes = 1;
  const auto res = exact_min_ft_2spanner(g, 1, opt);
  EXPECT_FALSE(res.proven_optimal);
  // Still returns the greedy incumbent, which is valid.
  EXPECT_TRUE(is_ft_2spanner(g, res.in_spanner, 1));
}

}  // namespace
}  // namespace ftspan
