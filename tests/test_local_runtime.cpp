#include "local/runtime.hpp"

#include <gtest/gtest.h>

#include "graph/generators.hpp"

namespace ftspan::local {
namespace {

using ftspan::Graph;
using ftspan::Vertex;
using ftspan::VertexSet;
using ftspan::path;

TEST(Runtime, RoundsAndMessagesCounted) {
  const Graph g = ftspan::cycle(6);
  const auto stats = run_rounds<int>(
      g, 3,
      [](std::size_t, Vertex, const std::vector<Inbound<int>>&,
         Mailbox<int>& mb) { mb.broadcast(1); });
  EXPECT_EQ(stats.rounds, 3u);
  EXPECT_EQ(stats.messages, 3u * 12u);  // 6 vertices x degree 2 per round
}

TEST(Runtime, OneHopPerRoundLocality) {
  // Token starts at vertex 0 of a path; measure when each vertex first
  // hears it. Information must travel exactly one hop per round.
  const Graph g = path(6);
  std::vector<std::size_t> heard(6, 999);
  run_rounds<int>(g, 6, [&](std::size_t round, Vertex v,
                            const std::vector<Inbound<int>>& inbox,
                            Mailbox<int>& mb) {
    if (round == 0 && v == 0) {
      heard[0] = 0;
      mb.broadcast(1);
      return;
    }
    if (!inbox.empty() && heard[v] == 999) {
      heard[v] = round;
      mb.broadcast(1);
    }
  });
  for (Vertex v = 0; v < 6; ++v) EXPECT_EQ(heard[v], v);
}

TEST(Runtime, SendToSpecificNeighbor) {
  const Graph g = path(3);
  std::vector<int> received(3, 0);
  run_rounds<int>(g, 2, [&](std::size_t round, Vertex v,
                            const std::vector<Inbound<int>>& inbox,
                            Mailbox<int>& mb) {
    if (round == 0 && v == 1) mb.send(2, 42);
    for (const auto& in : inbox) received[v] += in.msg;
  });
  EXPECT_EQ(received[0], 0);
  EXPECT_EQ(received[2], 42);
}

TEST(Runtime, SendToNonNeighborThrows) {
  const Graph g = path(3);  // 0 and 2 are not adjacent
  EXPECT_THROW(
      run_rounds<int>(g, 1,
                      [](std::size_t, Vertex v, const std::vector<Inbound<int>>&,
                         Mailbox<int>& mb) {
                        if (v == 0) mb.send(2, 1);
                      }),
      std::logic_error);
}

TEST(Runtime, FaultyNodesSilent) {
  const Graph g = path(3);
  VertexSet faults(3, {1});
  std::size_t mid_received = 0, end_received = 0;
  const auto stats = run_rounds<int>(
      g, 3,
      [&](std::size_t, Vertex v, const std::vector<Inbound<int>>& inbox,
          Mailbox<int>& mb) {
        if (v == 1) mid_received += inbox.size();
        if (v == 2) end_received += inbox.size();
        mb.broadcast(7);
      },
      &faults);
  // Vertex 1 never runs; nothing reaches vertex 2 (its only neighbor is 1).
  EXPECT_EQ(mid_received, 0u);
  EXPECT_EQ(end_received, 0u);
  // Sends *to* the faulty vertex are dropped, not counted.
  EXPECT_EQ(stats.messages, 0u + 3u * 1u * 0u + 0u);
}

TEST(Runtime, SendersToFaultyNeighborsDropped) {
  const Graph g = ftspan::complete(3);
  VertexSet faults(3, {2});
  const auto stats = run_rounds<int>(
      g, 1,
      [](std::size_t, Vertex, const std::vector<Inbound<int>>&,
         Mailbox<int>& mb) { mb.broadcast(1); },
      &faults);
  // 2 alive vertices; each broadcast reaches only the other alive one.
  EXPECT_EQ(stats.messages, 2u);
}

TEST(Runtime, InboxClearedBetweenRounds) {
  const Graph g = path(2);
  std::vector<std::size_t> inbox_sizes;
  run_rounds<int>(g, 3, [&](std::size_t round, Vertex v,
                            const std::vector<Inbound<int>>& inbox,
                            Mailbox<int>& mb) {
    if (v == 0) {
      inbox_sizes.push_back(inbox.size());
      if (round == 0) mb.send(1, 1);
    }
    if (v == 1 && round == 1) mb.send(0, 2);  // replies once
  });
  // Round 0: empty; round 1: empty (reply not yet sent); round 2: one msg.
  ASSERT_EQ(inbox_sizes.size(), 3u);
  EXPECT_EQ(inbox_sizes[0], 0u);
  EXPECT_EQ(inbox_sizes[1], 0u);
  EXPECT_EQ(inbox_sizes[2], 1u);
}

TEST(Runtime, StatsAccumulate) {
  RunStats a{2, 10}, b{3, 5};
  a += b;
  EXPECT_EQ(a.rounds, 5u);
  EXPECT_EQ(a.messages, 15u);
}

}  // namespace
}  // namespace ftspan::local
