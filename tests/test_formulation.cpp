#include "spanner2/formulation.hpp"

#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "spanner2/verify2.hpp"

namespace ftspan {
namespace {

TEST(BuildLp, VariableAndPathCounts) {
  // Triangle 0->1->2, 0->2: P_{0,2} = {0->1->2}; other edges have no paths.
  Digraph g(3);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(0, 2);
  const TwoSpannerLp lp = build_two_spanner_lp(g, 0);
  EXPECT_EQ(lp.x_var.size(), 3u);
  EXPECT_EQ(lp.paths.size(), 1u);
  EXPECT_EQ(lp.paths[0].mid, 1u);
  // Variables: 3 x + 1 f; constraints: 2 capacity + 3 covering.
  EXPECT_EQ(lp.model.num_variables(), 4u);
  EXPECT_EQ(lp.model.num_constraints(), 5u);
}

TEST(Lp3, EdgeWithNoPathsForcesX1) {
  // Lone edge: covering needs (r+1) x >= r+1 -> x = 1.
  Digraph g(2);
  g.add_edge(0, 1, 7.0);
  for (std::size_t r : {0u, 2u}) {
    const auto res = solve_lp3(g, r);
    ASSERT_EQ(res.status, LpStatus::kOptimal);
    EXPECT_NEAR(res.value, 7.0, 1e-7);
    EXPECT_NEAR(res.x[0], 1.0, 1e-7);
  }
}

TEST(Lp3, GapGadgetShowsOmegaRGap) {
  // Section 3.2: LP (3) can pay ~ M/(r+1) + 2r while OPT >= M.
  const std::size_t r = 5;
  const double M = 1000.0;
  const Digraph g = gap_gadget(r, M);
  const auto lp3 = solve_lp3(g, r);
  ASSERT_EQ(lp3.status, LpStatus::kOptimal);
  EXPECT_LT(lp3.value, M / (r + 1) + 2.0 * r + 1e-6);
  // While any integral solution costs >= M (all midpoints can fail).
}

TEST(Lp4, GapGadgetClosedByKnapsackCover) {
  // With only r midpoints available, no r+1 2-paths exist, so the
  // knapsack-cover inequality with W = all paths forces x_{(u,v)} = 1.
  const std::size_t r = 5;
  const double M = 1000.0;
  const Digraph g = gap_gadget(r, M);
  const auto lp4 = solve_lp4(g, r);
  ASSERT_EQ(lp4.status, LpStatus::kOptimal);
  EXPECT_GT(lp4.value, M - 1e-6);
  EXPECT_GT(lp4.cuts_added, 0u);
  // The expensive edge is integral at 1.
  EXPECT_NEAR(lp4.x[*g.edge_id(0, 1)], 1.0, 1e-6);
}

TEST(Lp4, AtLeastAsStrongAsLp3) {
  for (std::uint64_t seed : {1ull, 2ull, 3ull}) {
    const Digraph g = di_gnp(12, 0.3, seed);
    for (std::size_t r : {0u, 1u, 2u}) {
      const auto v3 = solve_lp3(g, r);
      const auto v4 = solve_lp4(g, r);
      ASSERT_EQ(v3.status, LpStatus::kOptimal);
      ASSERT_EQ(v4.status, LpStatus::kOptimal);
      EXPECT_GE(v4.value, v3.value - 1e-6)
          << "seed=" << seed << " r=" << r;
    }
  }
}

TEST(Lp4, LowerBoundsAnyValidSpanner) {
  // LP (4) is a relaxation: its value is <= the cost of every valid
  // integral spanner, in particular the greedy one.
  for (std::uint64_t seed : {4ull, 5ull}) {
    const Digraph g = di_gnp(12, 0.35, seed);
    for (std::size_t r : {0u, 1u}) {
      const auto lp = solve_lp4(g, r);
      ASSERT_EQ(lp.status, LpStatus::kOptimal);
      const auto greedy = greedy_ft_2spanner(g, r);
      ASSERT_TRUE(is_ft_2spanner(g, greedy, r));
      EXPECT_LE(lp.value, spanner_cost(g, greedy) + 1e-6);
    }
  }
}

TEST(Lp4, CompleteGraphNeedsLinearInRCost) {
  // On K_n every vertex needs >= r+1 in/out "coverage"; LP (4) must scale
  // with r (this is what LP (2) failed to do — Section 3.1).
  const std::size_t n = 8;
  const Digraph g = di_complete(n);
  const auto r0 = solve_lp4(g, 0);
  const auto r2 = solve_lp4(g, 2);
  const auto r4 = solve_lp4(g, 4);
  ASSERT_EQ(r0.status, LpStatus::kOptimal);
  ASSERT_EQ(r2.status, LpStatus::kOptimal);
  ASSERT_EQ(r4.status, LpStatus::kOptimal);
  EXPECT_GT(r2.value, 1.5 * r0.value);
  EXPECT_GT(r4.value, r2.value);
}

TEST(Lp2, CompleteGraphMatchesClosedForm) {
  // n kept tiny: LP (2) materializes one flow system per fault set.
  const std::size_t n = 6, r = 1;
  const Digraph g = di_complete(n);
  const auto lp2 = solve_lp2_exact(g, r);
  ASSERT_EQ(lp2.status, LpStatus::kOptimal);
  EXPECT_LE(lp2.value, lp2_value_complete_graph(n, r) + 1e-5);
  // Exact optimum on K_n: x_e = 1/(n-1-r) (direct edge + n-2-r midpoints).
  EXPECT_NEAR(lp2.value, 30.0 / 4.0, 1e-4);
}

TEST(Lp2, WeakerThanLp4OnCompleteGraph) {
  // The Section 3.1 point: LP (2) has value O(n) on K_n while LP (4)
  // scales with r.
  const std::size_t n = 6, r = 2;
  const Digraph g = di_complete(n);
  const auto lp2 = solve_lp2_exact(g, r);
  const auto lp4 = solve_lp4(g, r);
  ASSERT_EQ(lp2.status, LpStatus::kOptimal);
  ASSERT_EQ(lp4.status, LpStatus::kOptimal);
  EXPECT_LT(lp2.value, lp4.value - 1e-6);
  EXPECT_NEAR(lp2.value, 10.0, 1e-4);        // x = 1/3 each
  EXPECT_NEAR(lp4.value, 90.0 / 7.0, 1e-4);  // x = 3/7 each
}

TEST(Lp2, ThrowsOnTooManyFaultSets) {
  const Digraph g = di_complete(30);
  EXPECT_THROW(solve_lp2_exact(g, 4, 100), std::runtime_error);
}

TEST(Lp2ClosedForm, Formula) {
  EXPECT_NEAR(lp2_value_complete_graph(10, 2), 90.0 / 6.0, 1e-12);
  EXPECT_THROW(lp2_value_complete_graph(4, 2), std::invalid_argument);
}

TEST(Oracle, CleanOnIntegralValidSolution) {
  const Digraph g = di_complete(6);
  TwoSpannerLp lp = build_two_spanner_lp(g, 1);
  const auto oracle = knapsack_cover_oracle(lp);
  // All-ones is a valid spanner: no violated inequality at x = 1, f = 1.
  std::vector<double> sol(lp.model.num_variables(), 1.0);
  EXPECT_TRUE(oracle(sol).empty());
}

TEST(Oracle, FindsViolationAtZero) {
  const Digraph g = gap_gadget(2, 10.0);
  TwoSpannerLp lp = build_two_spanner_lp(g, 2);
  const auto oracle = knapsack_cover_oracle(lp);
  // x = 0, f = 0 violates knapsack-cover for the (0,1) edge (and base
  // covering too, but the oracle only reports KC cuts for W != ∅).
  std::vector<double> sol(lp.model.num_variables(), 0.0);
  const auto cuts = oracle(sol);
  EXPECT_FALSE(cuts.empty());
  for (const auto& c : cuts) EXPECT_EQ(c.sense, Sense::kGreaterEqual);
}

TEST(Formulation, EmptyGraph) {
  Digraph g(4);
  const auto res = solve_lp4(g, 1);
  EXPECT_EQ(res.status, LpStatus::kOptimal);
  EXPECT_DOUBLE_EQ(res.value, 0.0);
}

}  // namespace
}  // namespace ftspan
