#include "spanner2/verify2.hpp"

#include <gtest/gtest.h>

#include <tuple>

#include "graph/generators.hpp"
#include "util/rng.hpp"

namespace ftspan {
namespace {

std::vector<char> all_edges(const Digraph& g) {
  return std::vector<char>(g.num_edges(), 1);
}

TEST(SpannerTwoPaths, CountsOnlyCompletePaths) {
  Digraph g(4);
  const EdgeId a = g.add_edge(0, 1);
  g.add_edge(1, 3);
  g.add_edge(0, 2);
  const EdgeId d = g.add_edge(2, 3);
  g.add_edge(0, 3);
  std::vector<char> in(g.num_edges(), 1);
  EXPECT_EQ(spanner_two_paths(g, in, 0, 3), 2u);
  in[a] = 0;  // breaks path via 1
  EXPECT_EQ(spanner_two_paths(g, in, 0, 3), 1u);
  in[d] = 0;  // breaks path via 2
  EXPECT_EQ(spanner_two_paths(g, in, 0, 3), 0u);
}

TEST(EdgeSatisfied, DirectMembershipSuffices) {
  Digraph g(2);
  const EdgeId e = g.add_edge(0, 1);
  std::vector<char> in{1};
  EXPECT_TRUE(edge_satisfied(g, in, e, 5));
  in[0] = 0;
  EXPECT_FALSE(edge_satisfied(g, in, e, 0));
}

TEST(IsFt2Spanner, WholeGraphAlwaysValid) {
  const Digraph g = di_gnp(15, 0.3, 3);
  EXPECT_TRUE(is_ft_2spanner(g, all_edges(g), 0));
  EXPECT_TRUE(is_ft_2spanner(g, all_edges(g), 3));
}

TEST(IsFt2Spanner, NeedsRPlusOnePaths) {
  // K_5 directed; drop edge (0,1). 3 midpoints remain.
  Digraph g = di_complete(5);
  std::vector<char> in = all_edges(g);
  in[*g.edge_id(0, 1)] = 0;
  EXPECT_TRUE(is_ft_2spanner(g, in, 2));   // 3 paths >= r+1 = 3
  EXPECT_FALSE(is_ft_2spanner(g, in, 3));  // needs 4 paths
}

TEST(UnsatisfiedEdges, ListsExactlyTheBrokenOnes) {
  Digraph g = di_complete(4);
  std::vector<char> in = all_edges(g);
  const EdgeId e01 = *g.edge_id(0, 1);
  const EdgeId e23 = *g.edge_id(2, 3);
  in[e01] = in[e23] = 0;
  // Each missing edge has 2 midpoints; r = 2 requires 3.
  auto bad = unsatisfied_edges(g, in, 2);
  EXPECT_EQ(bad.size(), 2u);
  EXPECT_TRUE(is_ft_2spanner(g, in, 1));
}

TEST(SpannerCost, SumsSelectedEdges) {
  Digraph g(3);
  g.add_edge(0, 1, 2.0);
  g.add_edge(1, 2, 3.0);
  g.add_edge(0, 2, 5.0);
  std::vector<char> in{1, 0, 1};
  EXPECT_DOUBLE_EQ(spanner_cost(g, in), 7.0);
}

// The heart of the module: Lemma 3.1's characterization agrees with the
// definition-level check (enumerating fault sets) on random instances.
class Lemma31Equivalence
    : public ::testing::TestWithParam<std::tuple<std::size_t, double, std::size_t, int>> {};

TEST_P(Lemma31Equivalence, CharacterizationMatchesDefinition) {
  const auto [n, p, r, seed] = GetParam();
  const Digraph g = di_gnp(n, p, static_cast<std::uint64_t>(seed));
  Rng rng(static_cast<std::uint64_t>(seed) * 17 + 1);
  // Random subsets of edges as candidate spanners.
  for (int trial = 0; trial < 8; ++trial) {
    std::vector<char> in(g.num_edges());
    for (auto& b : in) b = rng.bernoulli(0.7) ? 1 : 0;
    EXPECT_EQ(is_ft_2spanner(g, in, r),
              is_ft_2spanner_by_definition(g, in, r))
        << "n=" << n << " p=" << p << " r=" << r << " trial=" << trial;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, Lemma31Equivalence,
    ::testing::Combine(::testing::Values<std::size_t>(6, 8, 10),
                       ::testing::Values(0.4, 0.8),
                       ::testing::Values<std::size_t>(0, 1, 2),
                       ::testing::Values(1, 2)));

TEST(DefinitionCheck, ThrowsOnHugeEnumeration) {
  const Digraph g = di_gnp(64, 0.1, 1);
  EXPECT_THROW(
      is_ft_2spanner_by_definition(g, all_edges(g), 10, 1000),
      std::runtime_error);
}

TEST(GreedyRepair, FixesEverything) {
  for (std::uint64_t seed : {1ull, 2ull, 3ull}) {
    const Digraph g = di_gnp(12, 0.4, seed);
    for (std::size_t r : {0u, 1u, 3u}) {
      std::vector<char> in(g.num_edges(), 0);
      greedy_repair(g, in, r);
      EXPECT_TRUE(is_ft_2spanner(g, in, r)) << "seed=" << seed << " r=" << r;
    }
  }
}

TEST(GreedyRepair, NoWorkWhenAlreadyValid) {
  const Digraph g = di_gnp(10, 0.4, 9);
  std::vector<char> in = all_edges(g);
  EXPECT_EQ(greedy_repair(g, in, 2), 0u);
}

TEST(GreedyRepair, PrefersCheapPathsOverExpensiveEdge) {
  // u->v costs 100; two unit 2-paths exist. r = 0: repair should complete a
  // path rather than buy the direct edge.
  Digraph g(4);
  const EdgeId direct = g.add_edge(0, 1, 100.0);
  g.add_edge(0, 2, 1.0);
  g.add_edge(2, 1, 1.0);
  g.add_edge(0, 3, 1.0);
  g.add_edge(3, 1, 1.0);
  std::vector<char> in(g.num_edges(), 0);
  greedy_repair(g, in, 0);
  EXPECT_TRUE(is_ft_2spanner(g, in, 0));
  EXPECT_FALSE(in[direct]);
}

TEST(GreedyRepair, BuysEdgeWhenPathsInsufficient) {
  const Digraph g = gap_gadget(2, 100.0);  // only 2 midpoints, r = 2 needs 3
  std::vector<char> in(g.num_edges(), 0);
  greedy_repair(g, in, 2);
  EXPECT_TRUE(is_ft_2spanner(g, in, 2));
  EXPECT_TRUE(in[*g.edge_id(0, 1)]);
}

TEST(GreedyFt2Spanner, ValidAcrossR) {
  const Digraph g = di_complete(8);
  for (std::size_t r : {0u, 1u, 2u, 4u}) {
    const auto in = greedy_ft_2spanner(g, r);
    EXPECT_TRUE(is_ft_2spanner(g, in, r));
  }
}

TEST(DefinitionCheck, AgreesOnHandCraftedFaultScenario) {
  // The Lemma 3.1 proof scenario: H misses (u,v) and has exactly r paths;
  // failing all midpoints disconnects u,v in H but not in G.
  const std::size_t r = 2;
  Digraph g(2 + r + 1);  // u=0, v=1, mids 2..4 (r+1 = 3 midpoints in G)
  g.add_edge(0, 1);
  for (Vertex m = 2; m < 2 + r + 1; ++m) {
    g.add_edge(0, m);
    g.add_edge(m, 1);
  }
  std::vector<char> in(g.num_edges(), 1);
  in[0] = 0;  // drop (u,v): 3 = r+1 paths remain -> valid for r
  EXPECT_TRUE(is_ft_2spanner(g, in, r));
  EXPECT_TRUE(is_ft_2spanner_by_definition(g, in, r));
  // Drop one path's first arc: only r paths remain -> invalid.
  in[1] = 0;
  EXPECT_FALSE(is_ft_2spanner(g, in, r));
  EXPECT_FALSE(is_ft_2spanner_by_definition(g, in, r));
}

}  // namespace
}  // namespace ftspan
