#include "lp/simplex.hpp"

#include <gtest/gtest.h>

#include "lp/model.hpp"
#include "util/rng.hpp"

namespace ftspan {
namespace {

TEST(Simplex, TrivialEmptyModel) {
  LpModel m;
  const auto sol = solve_lp(m);
  EXPECT_EQ(sol.status, LpStatus::kOptimal);
  EXPECT_DOUBLE_EQ(sol.objective, 0.0);
}

TEST(Simplex, SingleVariableLowerBoundOptimum) {
  LpModel m;
  m.add_variable(1.0);  // min x, x >= 0
  const auto sol = solve_lp(m);
  ASSERT_EQ(sol.status, LpStatus::kOptimal);
  EXPECT_DOUBLE_EQ(sol.x[0], 0.0);
}

TEST(Simplex, CoveringConstraintBinds) {
  LpModel m;
  const int x = m.add_variable(3.0);
  m.add_constraint({{x, 2.0}}, Sense::kGreaterEqual, 5.0);
  const auto sol = solve_lp(m);
  ASSERT_EQ(sol.status, LpStatus::kOptimal);
  EXPECT_NEAR(sol.x[0], 2.5, 1e-8);
  EXPECT_NEAR(sol.objective, 7.5, 1e-8);
}

TEST(Simplex, ClassicTwoVariableProblem) {
  // min -3x - 5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18 -> (2, 6), obj -36.
  LpModel m;
  const int x = m.add_variable(-3.0);
  const int y = m.add_variable(-5.0);
  m.add_constraint({{x, 1.0}}, Sense::kLessEqual, 4.0);
  m.add_constraint({{y, 2.0}}, Sense::kLessEqual, 12.0);
  m.add_constraint({{x, 3.0}, {y, 2.0}}, Sense::kLessEqual, 18.0);
  const auto sol = solve_lp(m);
  ASSERT_EQ(sol.status, LpStatus::kOptimal);
  EXPECT_NEAR(sol.objective, -36.0, 1e-7);
  EXPECT_NEAR(sol.x[x], 2.0, 1e-7);
  EXPECT_NEAR(sol.x[y], 6.0, 1e-7);
}

TEST(Simplex, EqualityConstraint) {
  // min x + 2y s.t. x + y = 3, x <= 1 -> (1, 2), obj 5.
  LpModel m;
  const int x = m.add_variable(1.0, 1.0);
  const int y = m.add_variable(2.0);
  m.add_constraint({{x, 1.0}, {y, 1.0}}, Sense::kEqual, 3.0);
  const auto sol = solve_lp(m);
  ASSERT_EQ(sol.status, LpStatus::kOptimal);
  EXPECT_NEAR(sol.objective, 5.0, 1e-7);
}

TEST(Simplex, UpperBoundsViaModel) {
  // min -x, x <= 0.75 (upper bound), expect x = 0.75.
  LpModel m;
  m.add_variable(-1.0, 0.75);
  const auto sol = solve_lp(m);
  ASSERT_EQ(sol.status, LpStatus::kOptimal);
  EXPECT_NEAR(sol.x[0], 0.75, 1e-8);
}

TEST(Simplex, DetectsInfeasible) {
  LpModel m;
  const int x = m.add_variable(1.0, 1.0);
  m.add_constraint({{x, 1.0}}, Sense::kGreaterEqual, 2.0);  // x <= 1 conflicts
  EXPECT_EQ(solve_lp(m).status, LpStatus::kInfeasible);
}

TEST(Simplex, DetectsInfeasibleEqualities) {
  LpModel m;
  const int x = m.add_variable(0.0);
  const int y = m.add_variable(0.0);
  m.add_constraint({{x, 1.0}, {y, 1.0}}, Sense::kEqual, 1.0);
  m.add_constraint({{x, 1.0}, {y, 1.0}}, Sense::kEqual, 2.0);
  EXPECT_EQ(solve_lp(m).status, LpStatus::kInfeasible);
}

TEST(Simplex, DetectsUnbounded) {
  LpModel m;
  const int x = m.add_variable(-1.0);  // min -x, x unbounded above
  m.add_constraint({{x, 1.0}}, Sense::kGreaterEqual, 1.0);
  EXPECT_EQ(solve_lp(m).status, LpStatus::kUnbounded);
}

TEST(Simplex, NegativeRhsNormalization) {
  // min x s.t. -x <= -2  (i.e. x >= 2)
  LpModel m;
  const int x = m.add_variable(1.0);
  m.add_constraint({{x, -1.0}}, Sense::kLessEqual, -2.0);
  const auto sol = solve_lp(m);
  ASSERT_EQ(sol.status, LpStatus::kOptimal);
  EXPECT_NEAR(sol.x[0], 2.0, 1e-8);
}

TEST(Simplex, DuplicateTermsInRowAreSummed) {
  // min x s.t. x + x >= 4 -> x = 2.
  LpModel m;
  const int x = m.add_variable(1.0);
  m.add_constraint({{x, 1.0}, {x, 1.0}}, Sense::kGreaterEqual, 4.0);
  const auto sol = solve_lp(m);
  ASSERT_EQ(sol.status, LpStatus::kOptimal);
  EXPECT_NEAR(sol.x[0], 2.0, 1e-8);
}

TEST(Simplex, DegenerateProblemTerminates) {
  // Classic cycling-prone LP (Beale); must terminate via Bland fallback.
  LpModel m;
  const int x1 = m.add_variable(-0.75);
  const int x2 = m.add_variable(150.0);
  const int x3 = m.add_variable(-0.02);
  const int x4 = m.add_variable(6.0);
  m.add_constraint({{x1, 0.25}, {x2, -60.0}, {x3, -0.04}, {x4, 9.0}},
                   Sense::kLessEqual, 0.0);
  m.add_constraint({{x1, 0.5}, {x2, -90.0}, {x3, -0.02}, {x4, 3.0}},
                   Sense::kLessEqual, 0.0);
  m.add_constraint({{x3, 1.0}}, Sense::kLessEqual, 1.0);
  const auto sol = solve_lp(m);
  ASSERT_EQ(sol.status, LpStatus::kOptimal);
  EXPECT_NEAR(sol.objective, -0.05, 1e-6);
}

TEST(Simplex, TransportationProblem) {
  // 2 suppliers (10, 20), 2 consumers (15, 15); costs {{2,3},{4,1}}.
  // Optimum: s0->c0:10, s1->c0:5, s1->c1:15 -> 20+20+15 = 55.
  LpModel m;
  const int a = m.add_variable(2.0);
  const int b = m.add_variable(3.0);
  const int c = m.add_variable(4.0);
  const int d = m.add_variable(1.0);
  m.add_constraint({{a, 1.0}, {b, 1.0}}, Sense::kLessEqual, 10.0);
  m.add_constraint({{c, 1.0}, {d, 1.0}}, Sense::kLessEqual, 20.0);
  m.add_constraint({{a, 1.0}, {c, 1.0}}, Sense::kGreaterEqual, 15.0);
  m.add_constraint({{b, 1.0}, {d, 1.0}}, Sense::kGreaterEqual, 15.0);
  const auto sol = solve_lp(m);
  ASSERT_EQ(sol.status, LpStatus::kOptimal);
  EXPECT_NEAR(sol.objective, 55.0, 1e-7);
}

TEST(Simplex, SolutionSatisfiesModel) {
  // Random covering LPs: optimal solutions must be feasible.
  Rng rng(123);
  for (int trial = 0; trial < 20; ++trial) {
    LpModel m;
    const int nv = 5 + static_cast<int>(rng.uniform_index(5));
    for (int v = 0; v < nv; ++v) m.add_variable(1.0 + rng.uniform(), 1.0);
    for (int c = 0; c < nv; ++c) {
      std::vector<LinearTerm> terms;
      for (int v = 0; v < nv; ++v)
        if (rng.bernoulli(0.5)) terms.push_back({v, 1.0 + rng.uniform()});
      if (terms.empty()) terms.push_back({0, 1.0});
      m.add_constraint(std::move(terms), Sense::kGreaterEqual,
                       0.5 + rng.uniform());
    }
    const auto sol = solve_lp(m);
    if (sol.status != LpStatus::kOptimal) continue;  // can be infeasible
    EXPECT_LT(m.max_violation(sol.x), 1e-6) << "trial " << trial;
    EXPECT_NEAR(m.objective_value(sol.x), sol.objective, 1e-6);
  }
}

TEST(Simplex, IterationLimitReported) {
  LpModel m;
  const int x = m.add_variable(-3.0);
  const int y = m.add_variable(-5.0);
  m.add_constraint({{x, 1.0}, {y, 1.0}}, Sense::kLessEqual, 4.0);
  SimplexOptions opt;
  opt.max_iterations = 0;
  EXPECT_EQ(solve_lp(m, opt).status, LpStatus::kIterationLimit);
}

TEST(LpModel, Validation) {
  LpModel m;
  EXPECT_THROW(m.add_variable(1.0, -1.0), std::invalid_argument);
  m.add_variable(1.0);
  EXPECT_THROW(m.add_constraint({{5, 1.0}}, Sense::kEqual, 0.0),
               std::out_of_range);
}

TEST(LpModel, MaxViolationMeasures) {
  LpModel m;
  const int x = m.add_variable(1.0, 1.0);
  m.add_constraint({{x, 1.0}}, Sense::kGreaterEqual, 0.8);
  EXPECT_NEAR(m.max_violation({0.5}), 0.3, 1e-12);   // covering short by 0.3
  EXPECT_NEAR(m.max_violation({2.0}), 1.0, 1e-12);   // bound exceeded by 1
  EXPECT_NEAR(m.max_violation({-0.25}), 1.05, 1e-12);  // below zero + covering
  EXPECT_DOUBLE_EQ(m.max_violation({0.9}), 0.0);
}

}  // namespace
}  // namespace ftspan
