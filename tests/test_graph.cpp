#include "graph/graph.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace ftspan {
namespace {

TEST(Graph, EmptyGraph) {
  Graph g(5);
  EXPECT_EQ(g.num_vertices(), 5u);
  EXPECT_EQ(g.num_edges(), 0u);
  EXPECT_EQ(g.degree(0), 0u);
  EXPECT_EQ(g.max_degree(), 0u);
}

TEST(Graph, AddEdgeBasics) {
  Graph g(4);
  const EdgeId id = g.add_edge(0, 1, 2.5);
  ASSERT_NE(id, kInvalidEdge);
  EXPECT_EQ(g.num_edges(), 1u);
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(1, 0));  // undirected
  EXPECT_FALSE(g.has_edge(0, 2));
  EXPECT_DOUBLE_EQ(g.edge(id).w, 2.5);
  EXPECT_EQ(g.degree(0), 1u);
  EXPECT_EQ(g.degree(1), 1u);
}

TEST(Graph, RejectsSelfLoopsAndDuplicates) {
  Graph g(3);
  EXPECT_EQ(g.add_edge(1, 1), kInvalidEdge);
  EXPECT_NE(g.add_edge(0, 1), kInvalidEdge);
  EXPECT_EQ(g.add_edge(0, 1, 9.0), kInvalidEdge);
  EXPECT_EQ(g.add_edge(1, 0, 9.0), kInvalidEdge);  // same undirected edge
  EXPECT_EQ(g.num_edges(), 1u);
}

TEST(Graph, OutOfRangeThrows) {
  Graph g(2);
  EXPECT_THROW(g.add_edge(0, 5), std::out_of_range);
}

TEST(Graph, EdgeOther) {
  Graph g(3);
  const EdgeId id = g.add_edge(1, 2);
  EXPECT_EQ(g.edge(id).other(1), 2u);
  EXPECT_EQ(g.edge(id).other(2), 1u);
}

TEST(Graph, NeighborsCarryEdgeIds) {
  Graph g(3);
  const EdgeId a = g.add_edge(0, 1, 1.0);
  const EdgeId b = g.add_edge(0, 2, 3.0);
  const auto nbrs = g.neighbors(0);
  ASSERT_EQ(nbrs.size(), 2u);
  EXPECT_EQ(nbrs[0].edge, a);
  EXPECT_EQ(nbrs[1].edge, b);
  EXPECT_DOUBLE_EQ(nbrs[1].w, 3.0);
}

TEST(Graph, TotalWeightAndMaxDegree) {
  Graph g(4);
  g.add_edge(0, 1, 1.0);
  g.add_edge(0, 2, 2.0);
  g.add_edge(0, 3, 3.0);
  EXPECT_DOUBLE_EQ(g.total_weight(), 6.0);
  EXPECT_EQ(g.max_degree(), 3u);
}

TEST(Graph, SubgraphWithout) {
  Graph g(4);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(2, 3);
  VertexSet faults(4, {1});
  const Graph h = g.subgraph_without(faults);
  EXPECT_EQ(h.num_vertices(), 4u);  // ids preserved
  EXPECT_EQ(h.num_edges(), 1u);
  EXPECT_TRUE(h.has_edge(2, 3));
  EXPECT_FALSE(h.has_edge(0, 1));
}

TEST(Graph, EdgeSubgraph) {
  Graph g(4);
  const EdgeId a = g.add_edge(0, 1, 5.0);
  g.add_edge(1, 2);
  const EdgeId c = g.add_edge(2, 3);
  const Graph h = g.edge_subgraph({a, c});
  EXPECT_EQ(h.num_edges(), 2u);
  EXPECT_TRUE(h.has_edge(0, 1));
  EXPECT_FALSE(h.has_edge(1, 2));
  EXPECT_DOUBLE_EQ(h.edge(*h.edge_id(0, 1)).w, 5.0);
}

TEST(Graph, FromEdges) {
  const Graph g = Graph::from_edges(3, {{0, 1, 1.0}, {1, 2, 2.0}});
  EXPECT_EQ(g.num_edges(), 2u);
  EXPECT_TRUE(g.has_edge(1, 2));
}

TEST(Digraph, DirectedSemantics) {
  Digraph g(3);
  ASSERT_NE(g.add_edge(0, 1, 1.0), kInvalidEdge);
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_FALSE(g.has_edge(1, 0));  // direction matters
  ASSERT_NE(g.add_edge(1, 0, 2.0), kInvalidEdge);
  EXPECT_TRUE(g.has_edge(1, 0));
  EXPECT_EQ(g.num_edges(), 2u);
}

TEST(Digraph, InOutDegrees) {
  Digraph g(4);
  g.add_edge(0, 1);
  g.add_edge(0, 2);
  g.add_edge(3, 0);
  EXPECT_EQ(g.out_degree(0), 2u);
  EXPECT_EQ(g.in_degree(0), 1u);
  EXPECT_EQ(g.in_degree(1), 1u);
  EXPECT_EQ(g.out_degree(1), 0u);
  EXPECT_EQ(g.max_degree(), 2u);
}

TEST(Digraph, RejectsSelfLoopsAndDuplicates) {
  Digraph g(2);
  EXPECT_EQ(g.add_edge(0, 0), kInvalidEdge);
  EXPECT_NE(g.add_edge(0, 1), kInvalidEdge);
  EXPECT_EQ(g.add_edge(0, 1), kInvalidEdge);
}

TEST(Digraph, TwoPathMidpoints) {
  Digraph g(5);
  g.add_edge(0, 1);
  g.add_edge(0, 2);  // 0 -> 2 -> 1 is a 2-path
  g.add_edge(2, 1);
  g.add_edge(0, 3);  // 3 has no edge to 1
  g.add_edge(4, 1);  // no edge 0 -> 4
  const auto mids = g.two_path_midpoints(0, 1);
  ASSERT_EQ(mids.size(), 1u);
  EXPECT_EQ(mids[0], 2u);
}

TEST(Digraph, TwoPathMidpointsExcludesEndpoints) {
  Digraph g(3);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(0, 2);
  // 0 -> 1 -> 2: midpoint 1; the direct edge (0,2) is not a 2-path.
  const auto mids = g.two_path_midpoints(0, 2);
  ASSERT_EQ(mids.size(), 1u);
  EXPECT_EQ(mids[0], 1u);
}

TEST(Digraph, TwoPathMidpointsBothScanDirections) {
  // Force both branches of the size heuristic (scan out(u) vs in(v)).
  Digraph g(6);
  g.add_edge(0, 2);
  g.add_edge(2, 1);
  g.add_edge(0, 3);
  g.add_edge(3, 1);
  g.add_edge(4, 1);
  g.add_edge(5, 1);  // in(1) larger than out(0) now
  auto mids = g.two_path_midpoints(0, 1);
  EXPECT_EQ(mids.size(), 2u);
  g.add_edge(0, 4);
  g.add_edge(0, 5);  // out(0) larger; same answer plus new midpoints
  mids = g.two_path_midpoints(0, 1);
  EXPECT_EQ(mids.size(), 4u);
}

TEST(Digraph, TotalCost) {
  Digraph g(3);
  g.add_edge(0, 1, 1.5);
  g.add_edge(1, 2, 2.5);
  EXPECT_DOUBLE_EQ(g.total_cost(), 4.0);
}

// Edge hashing packs (u << 32) | v into 64 bits, so a vertex universe at or
// above 2^32 would make the hash non-injective (and ids unrepresentable in
// the 32-bit Vertex type). The constructors must refuse before allocating.
TEST(Graph, RejectsVertexCountBeyond32BitIdSpace) {
  const std::size_t too_many = static_cast<std::size_t>(kInvalidVertex) + 1;
  EXPECT_THROW(Graph{too_many}, std::invalid_argument);
  EXPECT_THROW(Graph{too_many + 5}, std::invalid_argument);
  EXPECT_NO_THROW(Graph{0});
}

TEST(Digraph, RejectsVertexCountBeyond32BitIdSpace) {
  const std::size_t too_many = static_cast<std::size_t>(kInvalidVertex) + 1;
  EXPECT_THROW(Digraph{too_many}, std::invalid_argument);
  EXPECT_NO_THROW(Digraph{0});
}

}  // namespace
}  // namespace ftspan
