// The generator × algorithm × fault-model property matrix (ISSUE 3).
//
// Every cell builds a full-scale random graph, runs one spanner algorithm,
// and validates its advertised guarantee through the StretchOracle. A
// failing cell prints a replayable (generator, params, seed) tuple.
#include "property/harness.hpp"

#include <gtest/gtest.h>

#include "graph/csr.hpp"
#include "graph/sp_engine.hpp"

namespace ftspan {
namespace {

using proptest::Algorithm;
using proptest::CellFailure;
using proptest::default_algorithms;
using proptest::default_generators;
using proptest::FaultModel;
using proptest::Generator;
using proptest::GraphCase;
using proptest::HarnessOptions;
using proptest::replay_tuple;
using proptest::run_cell;

constexpr std::uint64_t kMatrixSeed = 20260729;

TEST(PropertyMatrix, EveryGeneratorAlgorithmCellHoldsItsGuarantee) {
  const auto generators = default_generators();
  const auto algorithms = default_algorithms();
  std::size_t cells = 0;
  for (const auto& gen : generators)
    for (const auto& algo : algorithms) {
      SCOPED_TRACE(gen.name + " x " + algo.name);
      const auto failure = run_cell(gen, algo, kMatrixSeed);
      EXPECT_FALSE(failure.has_value())
          << "replay: " << replay_tuple(*failure);
      ++cells;
    }
  // The acceptance bar: at least 30 green generator × algorithm cells.
  EXPECT_GE(cells, 30u);
}

// The engine-specialization cell: across every registered workload family,
// families inside the bucket domain (integral weights, bounded maximum —
// where kAuto actually selects the bucket) must reproduce the stable heap
// bit-for-bit: distances, parents, vias, and the settle order. Families
// outside the domain must resolve kAuto to the heap.
TEST(PropertyMatrix, BucketEngineMatchesHeapAcrossAllWorkloads) {
  std::size_t integral_cells = 0;
  for (const auto& gen : default_generators()) {
    SCOPED_TRACE(gen.name);
    const GraphCase gc = gen.make(0.35, kMatrixSeed);
    const Csr csr(gc.g);
    const WeightProfile& wp = csr.weights();
    if (!wp.integral || wp.max_weight > static_cast<Weight>(kMaxBucketWeight)) {
      // Outside the bucket domain kAuto must fall back to the heap.
      EXPECT_EQ(select_sp_queue(SpEnginePolicy::kAuto, wp.integral,
                                wp.max_weight),
                SpQueue::kHeap);
      continue;
    }
    ++integral_cells;
    DijkstraEngine heap, bucket;
    heap.set_queue(SpQueue::kHeap);
    bucket.set_queue(SpQueue::kBucket, wp.max_weight);
    const std::size_t n = csr.num_vertices();
    const std::size_t stride = std::max<std::size_t>(1, n / 12);
    for (Vertex s = 0; s < n; s += static_cast<Vertex>(stride)) {
      heap.run(csr, s);
      bucket.run(csr, s);
      const auto ho = heap.settle_order();
      const auto bo = bucket.settle_order();
      ASSERT_EQ(ho.size(), bo.size()) << "s=" << s;
      for (std::size_t i = 0; i < ho.size(); ++i)
        ASSERT_EQ(ho[i], bo[i]) << "s=" << s << " i=" << i;
      for (Vertex v = 0; v < n; ++v) {
        ASSERT_EQ(heap.dist(v), bucket.dist(v)) << "s=" << s << " v=" << v;
        ASSERT_EQ(heap.parent(v), bucket.parent(v)) << "s=" << s << " v=" << v;
        ASSERT_EQ(heap.via(v), bucket.via(v)) << "s=" << s << " v=" << v;
      }
    }
  }
  // The workload registry must keep exercising the bucket domain: at least
  // the unit-weight families (gnp, grid, hypercube, ...) land here.
  EXPECT_GE(integral_cells, 3u);
}

TEST(PropertyMatrix, MatrixIsSeedDeterministic) {
  // Same cell, same seed, run twice: identical outcome (here: both green).
  const auto gen = default_generators()[0];
  const auto algo = default_algorithms()[0];
  const auto a = run_cell(gen, algo, kMatrixSeed);
  const auto b = run_cell(gen, algo, kMatrixSeed);
  EXPECT_EQ(a.has_value(), b.has_value());
  if (a && b) EXPECT_EQ(replay_tuple(*a), replay_tuple(*b));
}

TEST(PropertyMatrix, ShrinkingFindsASmallFailingInstance) {
  // A deliberately broken "algorithm" (empty spanner) must fail, and the
  // harness must shrink the witness all the way down to the generator's
  // floor size rather than reporting the full-scale graph.
  const Algorithm broken{"empty_spanner", FaultModel::kNone, 3.0, 0,
                         [](const Graph&, std::uint64_t) {
                           return std::vector<EdgeId>{};
                         }};
  const auto failure = run_cell(default_generators()[0], broken, kMatrixSeed);
  ASSERT_TRUE(failure.has_value());
  EXPECT_LT(failure->scale, 0.1);
  EXPECT_EQ(failure->params, "n=12 p=0.833333");  // the gnp floor instance
  EXPECT_EQ(failure->worst_stretch, kInfiniteWeight);
  // The replay tuple carries everything needed to reproduce.
  const std::string tuple = replay_tuple(*failure);
  EXPECT_NE(tuple.find("generator=gnp"), std::string::npos);
  EXPECT_NE(tuple.find("seed=20260729"), std::string::npos);
}

TEST(PropertyMatrix, ShrinkingKeepsFullScaleWhenSmallGraphsPass) {
  // An algorithm that is only wrong on graphs with > 100 vertices: the
  // shrink attempts all pass, so the reported instance stays at full scale.
  const Algorithm big_only{"breaks_past_100", FaultModel::kNone, 3.0, 0,
                           [](const Graph& g, std::uint64_t) {
                             std::vector<EdgeId> all;
                             for (EdgeId id = 0; id < g.num_edges(); ++id)
                               all.push_back(id);
                             if (g.num_vertices() > 100 && !all.empty())
                               all.pop_back();  // drop one edge
                             return all;
                           }};
  // Use a path so dropping any edge disconnects it (stretch = infinity).
  const Generator path_gen{
      "path", [](double s, std::uint64_t) {
        const std::size_t n = std::max<std::size_t>(
            12, static_cast<std::size_t>(std::lround(150 * s)));
        return GraphCase{path(n), "n=" + std::to_string(n)};
      }};
  const auto failure = run_cell(path_gen, big_only, kMatrixSeed);
  ASSERT_TRUE(failure.has_value());
  EXPECT_DOUBLE_EQ(failure->scale, 1.0);
  EXPECT_EQ(failure->params, "n=150");
}

}  // namespace
}  // namespace ftspan
