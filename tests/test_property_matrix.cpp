// The generator × algorithm × fault-model property matrix (ISSUE 3).
//
// Every cell builds a full-scale random graph, runs one spanner algorithm,
// and validates its advertised guarantee through the StretchOracle. A
// failing cell prints a replayable (generator, params, seed) tuple.
#include "property/harness.hpp"

#include <gtest/gtest.h>

#include "graph/csr.hpp"
#include "graph/graph_file.hpp"
#include "graph/sp_engine.hpp"
#include "runner/runner.hpp"

namespace ftspan {
namespace {

using proptest::Algorithm;
using proptest::CellFailure;
using proptest::default_algorithms;
using proptest::default_generators;
using proptest::FaultModel;
using proptest::Generator;
using proptest::GraphCase;
using proptest::HarnessOptions;
using proptest::replay_tuple;
using proptest::run_cell;

constexpr std::uint64_t kMatrixSeed = 20260729;

TEST(PropertyMatrix, EveryGeneratorAlgorithmCellHoldsItsGuarantee) {
  const auto generators = default_generators();
  const auto algorithms = default_algorithms();
  std::size_t cells = 0;
  for (const auto& gen : generators)
    for (const auto& algo : algorithms) {
      SCOPED_TRACE(gen.name + " x " + algo.name);
      const auto failure = run_cell(gen, algo, kMatrixSeed);
      EXPECT_FALSE(failure.has_value())
          << "replay: " << replay_tuple(*failure);
      ++cells;
    }
  // The acceptance bar: at least 30 green generator × algorithm cells.
  EXPECT_GE(cells, 30u);
}

// The engine-specialization cell: across every registered workload family,
// families inside the bucket domain (integral weights, bounded maximum —
// where kAuto actually selects the bucket) must reproduce the stable heap
// bit-for-bit: distances, parents, vias, and the settle order. Families
// outside the domain must resolve kAuto to the heap.
TEST(PropertyMatrix, BucketEngineMatchesHeapAcrossAllWorkloads) {
  std::size_t integral_cells = 0;
  for (const auto& gen : default_generators()) {
    SCOPED_TRACE(gen.name);
    const GraphCase gc = gen.make(0.35, kMatrixSeed);
    const Csr csr(gc.g);
    const WeightProfile& wp = csr.weights();
    if (!wp.integral || wp.max_weight > static_cast<Weight>(kMaxBucketWeight)) {
      // Outside the bucket domain kAuto must fall back to the heap.
      EXPECT_EQ(select_sp_queue(SpEnginePolicy::kAuto, wp.integral,
                                wp.max_weight),
                SpQueue::kHeap);
      continue;
    }
    ++integral_cells;
    DijkstraEngine heap, bucket;
    heap.set_queue(SpQueue::kHeap);
    bucket.set_queue(SpQueue::kBucket, wp.max_weight);
    const std::size_t n = csr.num_vertices();
    const std::size_t stride = std::max<std::size_t>(1, n / 12);
    for (Vertex s = 0; s < n; s += static_cast<Vertex>(stride)) {
      heap.run(csr, s);
      bucket.run(csr, s);
      const auto ho = heap.settle_order();
      const auto bo = bucket.settle_order();
      ASSERT_EQ(ho.size(), bo.size()) << "s=" << s;
      for (std::size_t i = 0; i < ho.size(); ++i)
        ASSERT_EQ(ho[i], bo[i]) << "s=" << s << " i=" << i;
      for (Vertex v = 0; v < n; ++v) {
        ASSERT_EQ(heap.dist(v), bucket.dist(v)) << "s=" << s << " v=" << v;
        ASSERT_EQ(heap.parent(v), bucket.parent(v)) << "s=" << s << " v=" << v;
        ASSERT_EQ(heap.via(v), bucket.via(v)) << "s=" << s << " v=" << v;
      }
    }
  }
  // The workload registry must keep exercising the bucket domain: at least
  // the unit-weight families (gnp, grid, hypercube, ...) land here.
  EXPECT_GE(integral_cells, 3u);
}

// The delta-stepping cell (ISSUE 10): every registered workload family,
// reweighted into the mid-range integer regime through the max_weight=
// workload knob, must reproduce the stable heap bit-for-bit under
// engine=delta — distances, parents, vias, and the settle order — and kAuto
// must resolve the regime to delta (integral, max above the bucket wall).
TEST(PropertyMatrix, DeltaEngineMatchesHeapAcrossAllWorkloads) {
  constexpr Weight kMidRangeMax = 100000;
  std::size_t cells = 0;
  for (const std::string& name : runner::workload_registry().names()) {
    if (name == "file") continue;  // nothing to generate
    SCOPED_TRACE(name);
    runner::WorkloadParams wp;
    wp.scale = 0.35;
    wp.seed = kMatrixSeed;
    wp.max_weight = kMidRangeMax;
    const runner::WorkloadInstance inst = runner::make_workload(name, wp);

    // The reweight pass must keep the topology: same instance as without
    // the knob, edge for edge, only the lengths replaced.
    runner::WorkloadParams plain = wp;
    plain.max_weight = 0;
    const runner::WorkloadInstance orig = runner::make_workload(name, plain);
    ASSERT_EQ(inst.g.num_vertices(), orig.g.num_vertices());
    ASSERT_EQ(inst.g.num_edges(), orig.g.num_edges());
    for (EdgeId id = 0; id < inst.g.num_edges(); ++id) {
      ASSERT_EQ(inst.g.edge(id).u, orig.g.edge(id).u) << "id=" << id;
      ASSERT_EQ(inst.g.edge(id).v, orig.g.edge(id).v) << "id=" << id;
    }

    const Csr csr(inst.g);
    const WeightProfile& prof = csr.weights();
    ASSERT_TRUE(prof.integral);
    ASSERT_LE(prof.max_weight, kMidRangeMax);
    if (prof.max_weight <= static_cast<Weight>(kMaxBucketWeight))
      continue;  // a tiny family that happened to draw only small weights
    ++cells;
    EXPECT_EQ(select_sp_queue(SpEnginePolicy::kAuto, prof.integral,
                              prof.max_weight),
              SpQueue::kDelta);

    DijkstraEngine heap, delta;
    heap.set_queue(SpQueue::kHeap);
    delta.set_queue(SpQueue::kDelta, prof.max_weight);
    const std::size_t n = csr.num_vertices();
    const std::size_t stride = std::max<std::size_t>(1, n / 12);
    for (Vertex s = 0; s < n; s += static_cast<Vertex>(stride)) {
      heap.run(csr, s);
      delta.run(csr, s);
      const auto ho = heap.settle_order();
      const auto dvo = delta.settle_order();
      ASSERT_EQ(ho.size(), dvo.size()) << "s=" << s;
      for (std::size_t i = 0; i < ho.size(); ++i)
        ASSERT_EQ(ho[i], dvo[i]) << "s=" << s << " i=" << i;
      for (Vertex v = 0; v < n; ++v) {
        ASSERT_EQ(heap.dist(v), delta.dist(v)) << "s=" << s << " v=" << v;
        ASSERT_EQ(heap.parent(v), delta.parent(v)) << "s=" << s << " v=" << v;
        ASSERT_EQ(heap.via(v), delta.via(v)) << "s=" << s << " v=" << v;
      }
    }
  }
  // Reweighting puts essentially every family in the delta regime.
  EXPECT_GE(cells, 8u);
}

// The binary round-trip cell (ISSUE 7): for every registered workload
// family, generating the instance, saving it to ftspan.graph.v1, mmap-
// loading it back through the `file` workload, and rerunning the algorithm
// must reproduce the edge-set hash bit-for-bit — per thread count, for a
// deterministic construction (greedy) and a seeded one (ft_vertex).
TEST(PropertyMatrix, BinaryRoundTripKeepsEdgesHashBitIdentical) {
  constexpr double kScale = 0.35;
  for (const std::string& name : runner::workload_registry().names()) {
    if (name == "file") continue;  // nothing to generate
    SCOPED_TRACE(name);
    runner::WorkloadParams wp;
    wp.scale = kScale;
    wp.seed = kMatrixSeed;
    const runner::WorkloadInstance inst = runner::make_workload(name, wp);
    const std::string path =
        ::testing::TempDir() + "/roundtrip_" + name + ".fgb";
    save_graph_binary(path, inst.g);

    for (const bool ft : {false, true}) {
      runner::ScenarioSpec direct;
      direct.workload = name;
      direct.scale = kScale;
      direct.wseed = kMatrixSeed;
      direct.algo = ft ? "ft_vertex" : "greedy";
      direct.k = {3.0};
      direct.r = {ft ? std::size_t{1} : std::size_t{0}};
      direct.seed = kMatrixSeed;
      direct.threads = {1, 2, 4, 8};
      direct.validate = "none";

      runner::ScenarioSpec via_file = direct;
      via_file.workload = "file";
      via_file.path = path;
      via_file.scale = 1.0;  // the file IS the instance; no scaling knobs

      const runner::ScenarioReport a = runner::run_scenario(direct);
      const runner::ScenarioReport b = runner::run_scenario(via_file);
      ASSERT_EQ(a.cells.size(), b.cells.size());
      ASSERT_EQ(a.cells.size(), 4u) << "one cell per thread count";
      for (std::size_t i = 0; i < a.cells.size(); ++i) {
        SCOPED_TRACE(direct.algo + " threads=" +
                     std::to_string(a.cells[i].threads));
        ASSERT_EQ(a.cells[i].threads, b.cells[i].threads);
        EXPECT_EQ(a.cells[i].n, b.cells[i].n);
        EXPECT_EQ(a.cells[i].m, b.cells[i].m);
        EXPECT_EQ(a.cells[i].edges, b.cells[i].edges);
        EXPECT_EQ(a.cells[i].edges_hash, b.cells[i].edges_hash);
        // The determinism contract also holds ACROSS thread counts.
        EXPECT_EQ(a.cells[i].edges_hash, a.cells[0].edges_hash);
      }
    }
  }
}

TEST(PropertyMatrix, MatrixIsSeedDeterministic) {
  // Same cell, same seed, run twice: identical outcome (here: both green).
  const auto gen = default_generators()[0];
  const auto algo = default_algorithms()[0];
  const auto a = run_cell(gen, algo, kMatrixSeed);
  const auto b = run_cell(gen, algo, kMatrixSeed);
  EXPECT_EQ(a.has_value(), b.has_value());
  if (a && b) EXPECT_EQ(replay_tuple(*a), replay_tuple(*b));
}

TEST(PropertyMatrix, ShrinkingFindsASmallFailingInstance) {
  // A deliberately broken "algorithm" (empty spanner) must fail, and the
  // harness must shrink the witness all the way down to the generator's
  // floor size rather than reporting the full-scale graph.
  const Algorithm broken{"empty_spanner", FaultModel::kNone, 3.0, 0,
                         [](const Graph&, std::uint64_t) {
                           return std::vector<EdgeId>{};
                         }};
  const auto failure = run_cell(default_generators()[0], broken, kMatrixSeed);
  ASSERT_TRUE(failure.has_value());
  EXPECT_LT(failure->scale, 0.1);
  EXPECT_EQ(failure->params, "n=12 p=0.833333");  // the gnp floor instance
  EXPECT_EQ(failure->worst_stretch, kInfiniteWeight);
  // The replay tuple carries everything needed to reproduce.
  const std::string tuple = replay_tuple(*failure);
  EXPECT_NE(tuple.find("generator=gnp"), std::string::npos);
  EXPECT_NE(tuple.find("seed=20260729"), std::string::npos);
}

TEST(PropertyMatrix, ShrinkingKeepsFullScaleWhenSmallGraphsPass) {
  // An algorithm that is only wrong on graphs with > 100 vertices: the
  // shrink attempts all pass, so the reported instance stays at full scale.
  const Algorithm big_only{"breaks_past_100", FaultModel::kNone, 3.0, 0,
                           [](const Graph& g, std::uint64_t) {
                             std::vector<EdgeId> all;
                             for (EdgeId id = 0; id < g.num_edges(); ++id)
                               all.push_back(id);
                             if (g.num_vertices() > 100 && !all.empty())
                               all.pop_back();  // drop one edge
                             return all;
                           }};
  // Use a path so dropping any edge disconnects it (stretch = infinity).
  const Generator path_gen{
      "path", [](double s, std::uint64_t) {
        const std::size_t n = std::max<std::size_t>(
            12, static_cast<std::size_t>(std::lround(150 * s)));
        return GraphCase{path(n), "n=" + std::to_string(n)};
      }};
  const auto failure = run_cell(path_gen, big_only, kMatrixSeed);
  ASSERT_TRUE(failure.has_value());
  EXPECT_DOUBLE_EQ(failure->scale, 1.0);
  EXPECT_EQ(failure->params, "n=150");
}

}  // namespace
}  // namespace ftspan
