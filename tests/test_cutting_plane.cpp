#include "lp/cutting_plane.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace ftspan {
namespace {

TEST(CuttingPlane, NoCutsNeeded) {
  LpModel m;
  const int x = m.add_variable(1.0);
  m.add_constraint({{x, 1.0}}, Sense::kGreaterEqual, 1.0);
  const auto res = solve_with_cuts(m, [](const std::vector<double>&) {
    return std::vector<LpConstraint>{};
  });
  EXPECT_EQ(res.solution.status, LpStatus::kOptimal);
  EXPECT_EQ(res.rounds, 1u);
  EXPECT_EQ(res.cuts_added, 0u);
  EXPECT_TRUE(res.separated_clean);
}

TEST(CuttingPlane, LazyBoxConstraints) {
  // min -x - y over the implicit polytope {x <= 2, y <= 3}, with the box
  // described only by the oracle.
  LpModel m;
  const int x = m.add_variable(-1.0, 10.0);
  const int y = m.add_variable(-1.0, 10.0);
  const auto oracle = [&](const std::vector<double>& sol) {
    std::vector<LpConstraint> cuts;
    if (sol[0] > 2.0 + 1e-9) cuts.push_back({{{x, 1.0}}, Sense::kLessEqual, 2.0});
    if (sol[1] > 3.0 + 1e-9) cuts.push_back({{{y, 1.0}}, Sense::kLessEqual, 3.0});
    return cuts;
  };
  const auto res = solve_with_cuts(m, oracle);
  ASSERT_EQ(res.solution.status, LpStatus::kOptimal);
  EXPECT_NEAR(res.solution.objective, -5.0, 1e-7);
  EXPECT_EQ(res.cuts_added, 2u);
  EXPECT_TRUE(res.separated_clean);
}

TEST(CuttingPlane, ApproximatesCircleByTangents) {
  // min -x - y over x² + y² <= 1, separated by tangent cuts at the current
  // point. Converges toward x = y = 1/√2, objective -√2.
  LpModel m;
  const int x = m.add_variable(-1.0, 2.0);
  const int y = m.add_variable(-1.0, 2.0);
  const auto oracle = [&](const std::vector<double>& sol) {
    std::vector<LpConstraint> cuts;
    const double nrm = std::hypot(sol[0], sol[1]);
    if (nrm > 1.0 + 1e-6) {
      // Tangent at the projection: (x0/nrm) x + (y0/nrm) y <= 1.
      cuts.push_back({{{x, sol[0] / nrm}, {y, sol[1] / nrm}},
                      Sense::kLessEqual,
                      1.0});
    }
    return cuts;
  };
  CuttingPlaneOptions opt;
  opt.max_rounds = 100;
  const auto res = solve_with_cuts(m, oracle, opt);
  ASSERT_EQ(res.solution.status, LpStatus::kOptimal);
  EXPECT_NEAR(res.solution.objective, -std::sqrt(2.0), 1e-4);
}

TEST(CuttingPlane, RoundLimitReported) {
  LpModel m;
  const int x = m.add_variable(-1.0, 100.0);
  int calls = 0;
  // An oracle that always cuts (never satisfied).
  const auto oracle = [&](const std::vector<double>& sol) {
    ++calls;
    std::vector<LpConstraint> cuts;
    cuts.push_back({{{x, 1.0}}, Sense::kLessEqual, sol[0] / 2.0});
    return cuts;
  };
  CuttingPlaneOptions opt;
  opt.max_rounds = 5;
  const auto res = solve_with_cuts(m, oracle, opt);
  EXPECT_EQ(res.rounds, 5u);
  EXPECT_FALSE(res.separated_clean);
  EXPECT_EQ(calls, 5);
}

TEST(CuttingPlane, CutsPerRoundCapped) {
  LpModel m;
  const int x = m.add_variable(-1.0, 100.0);
  bool first = true;
  const auto oracle = [&](const std::vector<double>&) {
    std::vector<LpConstraint> cuts;
    if (first) {
      first = false;
      for (int i = 0; i < 10; ++i)
        cuts.push_back({{{x, 1.0}}, Sense::kLessEqual, 50.0 - i});
    }
    return cuts;
  };
  CuttingPlaneOptions opt;
  opt.max_cuts_per_round = 3;
  const auto res = solve_with_cuts(m, oracle, opt);
  EXPECT_EQ(res.cuts_added, 3u);
  EXPECT_EQ(res.solution.status, LpStatus::kOptimal);
}

TEST(CuttingPlane, InfeasibleCutStops) {
  LpModel m;
  const int x = m.add_variable(1.0, 1.0);
  bool cut_given = false;
  const auto oracle = [&](const std::vector<double>&) {
    std::vector<LpConstraint> cuts;
    if (!cut_given) {
      cut_given = true;
      cuts.push_back({{{x, 1.0}}, Sense::kGreaterEqual, 5.0});  // impossible
    }
    return cuts;
  };
  const auto res = solve_with_cuts(m, oracle);
  EXPECT_EQ(res.solution.status, LpStatus::kInfeasible);
  EXPECT_FALSE(res.separated_clean);
}

}  // namespace
}  // namespace ftspan
