#include "spanner/baswana_sen.hpp"

#include <gtest/gtest.h>

#include <tuple>

#include "graph/generators.hpp"
#include "spanner/verify.hpp"

namespace ftspan {
namespace {

TEST(BaswanaSen, RejectsK0) {
  EXPECT_THROW(baswana_sen_spanner(path(3), 0, 1), std::invalid_argument);
}

TEST(BaswanaSen, K1ReturnsWholeGraph) {
  const Graph g = gnp(30, 0.3, 1);
  EXPECT_EQ(baswana_sen_spanner(g, 1, 7).size(), g.num_edges());
}

TEST(BaswanaSen, K1RespectsFaults) {
  const Graph g = complete(10);
  VertexSet f(10, {0});
  const auto edges = baswana_sen_spanner(g, 1, 7, &f);
  EXPECT_EQ(edges.size(), g.num_edges() - 9);  // drop 0's edges
}

TEST(BaswanaSen, Stretch3OnRandomGraphs) {
  for (std::uint64_t seed : {1ull, 2ull, 3ull, 4ull}) {
    const Graph g = gnp(60, 0.2, seed);
    const Graph h = baswana_sen_spanner_graph(g, 2, seed * 31);
    EXPECT_TRUE(is_k_spanner(g, h, 3.0)) << "seed=" << seed;
  }
}

TEST(BaswanaSen, Stretch5Weighted) {
  for (std::uint64_t seed : {5ull, 6ull}) {
    const Graph g = gnp(60, 0.3, seed, 6.0);
    const Graph h = baswana_sen_spanner_graph(g, 3, seed);
    EXPECT_TRUE(is_k_spanner(g, h, 5.0)) << "seed=" << seed;
  }
}

TEST(BaswanaSen, SparsifiesDenseGraphs) {
  const Graph g = complete(100);
  const auto edges = baswana_sen_spanner(g, 2, 11);
  // Expected size O(k n^{1+1/2}) = O(2 * 1000); generous factor 4.
  EXPECT_LT(edges.size(), 4000u);
  EXPECT_LT(edges.size(), g.num_edges());
}

TEST(BaswanaSen, FaultMaskExcludesFaultyEndpoints) {
  const Graph g = gnp(40, 0.4, 13);
  VertexSet f(40, {1, 5, 9});
  const auto edges = baswana_sen_spanner(g, 2, 13, &f);
  for (EdgeId id : edges) {
    EXPECT_FALSE(f.contains(g.edge(id).u));
    EXPECT_FALSE(f.contains(g.edge(id).v));
  }
  EXPECT_TRUE(is_k_spanner(g, g.edge_subgraph(edges), 3.0, &f));
}

TEST(BaswanaSen, DeterministicPerSeed) {
  const Graph g = gnp(50, 0.3, 17);
  EXPECT_EQ(baswana_sen_spanner(g, 2, 99), baswana_sen_spanner(g, 2, 99));
}

TEST(BaswanaSen, AllFaultyYieldsEmpty) {
  const Graph g = complete(8);
  VertexSet f(8);
  for (Vertex v = 0; v < 8; ++v) f.insert(v);
  EXPECT_TRUE(baswana_sen_spanner(g, 2, 1, &f).empty());
}

// Property sweep: stretch 2k-1 for k in {2,3,4} across graph families.
class BsSweep : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(BsSweep, StretchBound) {
  const auto [k, seed] = GetParam();
  const Graph g = gnp(50, 0.25, static_cast<std::uint64_t>(seed), 3.0);
  const Graph h =
      baswana_sen_spanner_graph(g, static_cast<std::size_t>(k),
                                static_cast<std::uint64_t>(seed) * 7 + 1);
  EXPECT_TRUE(is_k_spanner(g, h, 2.0 * k - 1.0));
}

INSTANTIATE_TEST_SUITE_P(Grid, BsSweep,
                         ::testing::Combine(::testing::Values(2, 3, 4),
                                            ::testing::Values(1, 2, 3)));

}  // namespace
}  // namespace ftspan
